"""Property-based tests for the continuous MIB layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FairHash, GridAssignment, GridBoxHierarchy, get_aggregate
from repro.mib import build_mib_group
from repro.sim import LossyNetwork, RngRegistry, SimulationEngine

vote_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=500),
    values=st.floats(min_value=-1e4, max_value=1e4,
                     allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=40,
)


def _converged_world(votes, seed=0, rounds=40, ucastl=0.0):
    function = get_aggregate("average")
    assignment = GridAssignment(
        GridBoxHierarchy(len(votes), 4), votes, FairHash(0)
    )
    processes = build_mib_group(votes, function, assignment)
    engine = SimulationEngine(
        network=LossyNetwork(ucastl, max_message_size=1 << 20),
        rngs=RngRegistry(seed),
        max_rounds=100_000,
    )
    engine.add_processes(processes)
    engine.run(until=lambda: engine.round >= rounds)
    return processes, function


@given(votes=vote_maps)
@settings(max_examples=15, deadline=None)
def test_lossless_queries_converge_exactly(votes):
    processes, function = _converged_world(votes)
    expected = sum(votes.values()) / len(votes)
    for process in processes:
        assert process.query_value() == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )


@given(votes=vote_maps, seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_queries_always_well_formed_under_loss(votes, seed):
    """Even mid-convergence under heavy loss, every query is a valid
    aggregate over a subset of real members (never double-counted,
    never out of range)."""
    processes, function = _converged_world(
        votes, seed=seed, rounds=6, ucastl=0.6
    )
    low, high = min(votes.values()), max(votes.values())
    for process in processes:
        state = process.query()
        if state is None:
            continue
        assert state.members <= frozenset(votes)
        value = function.finalize(state)
        assert low - 1e-9 <= value <= high + 1e-9


@given(votes=vote_maps)
@settings(max_examples=8, deadline=None)
def test_mib_deterministic(votes):
    a, __ = _converged_world(votes, seed=5, rounds=12, ucastl=0.3)
    b, __ = _converged_world(votes, seed=5, rounds=12, ucastl=0.3)
    for pa, pb in zip(a, b):
        assert pa.query_value() == pb.query_value()
