"""Golden-run regression tests.

These pin the *exact* observable outcomes of fixed-seed runs.  Any change
to RNG stream consumption, round ordering, message planning or protocol
logic shifts these numbers — which is the point: an innocent-looking
refactor that silently changes simulation behaviour fails here first,
with a diff a human can reason about.

If a change is *intended* to alter behaviour (a protocol fix, a model
change), update the constants and say why in the commit.
"""

import pytest

from repro.experiments.params import with_params
from repro.experiments.runner import run_once


class TestGoldenRuns:
    def test_default_point_seed0(self):
        result = run_once(with_params(seed=0))
        assert result.completeness == 1.0
        assert result.rounds == 24
        assert result.messages_sent == 9396
        assert result.messages_dropped == 2310
        assert result.crashes == 5

    def test_lossy_point_seed1(self):
        result = run_once(with_params(n=100, ucastl=0.6, pf=0.0, seed=1))
        assert result.rounds == 15
        assert 0.5 < result.completeness <= 1.0
        # Exact completeness pinned to 4 decimals.  Re-baselined (from
        # 0.7390) when gossip-target selection moved from
        # Generator.choice to the block-drawn Floyd sampler
        # (repro.sim.sampling): the canonical stream consumption
        # changed once, intentionally — the sampler's own goldens pin
        # the new scheme against scalar reference draws.
        assert result.completeness == pytest.approx(0.7772, abs=5e-4)

    def test_partition_point_seed2(self):
        result = run_once(
            with_params(n=64, partl=0.9, ucastl=0.1, pf=0.0, seed=2)
        )
        assert result.rounds == 15
        assert result.messages_sent > 0
        assert result.report.crashed == 0

    def test_single_value_mode_seed3(self):
        result = run_once(
            with_params(n=64, batch_values=False, ucastl=0.0, pf=0.0,
                        seed=3)
        )
        assert result.rounds == 15
        assert 0.6 < result.completeness <= 1.0

    def test_cross_protocol_message_counts_seed0(self):
        """Deterministic protocols have exactly computable message counts."""
        flood = run_once(
            with_params(n=50, protocol="flood", ucastl=0.0, pf=0.0, seed=0)
        )
        assert flood.messages_sent == 50 * 49
        centralized = run_once(
            with_params(n=50, protocol="centralized", ucastl=0.0, pf=0.0,
                        seed=0)
        )
        assert centralized.messages_sent == 2 * 49
