"""Combination matrix: protocols x aggregates x fault settings.

Every protocol must produce exact results for every composable function
on a clean network, and remain sane (bounded, self-including, no
double-count crash) under faults.  Each cell is an independent
end-to-end run.
"""

import pytest

from repro.core.aggregates import get_aggregate
from repro.experiments.params import with_params
from repro.experiments.runner import PROTOCOLS, run_once

EXACT_PROTOCOLS = [p for p in PROTOCOLS if p != "flat_gossip"]
SCALAR_AGGREGATES = ["average", "sum", "count", "min", "max",
                     "mean_variance"]


class TestLosslessExactness:
    @pytest.mark.parametrize("protocol", EXACT_PROTOCOLS)
    @pytest.mark.parametrize("aggregate", SCALAR_AGGREGATES)
    def test_exact(self, protocol, aggregate):
        # C = 1.5: tiny groups need the larger round budget for guaranteed
        # lossless exactness (see docs/PROTOCOL.md, invariant 4).
        config = with_params(
            n=24, protocol=protocol, aggregate=aggregate,
            ucastl=0.0, pf=0.0, seed=7, rounds_factor_c=1.5,
        )
        result = run_once(config)
        assert result.completeness == pytest.approx(1.0)
        assert result.mean_estimate_error == pytest.approx(0.0, abs=1e-9)


class TestFaultSanity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("ucastl,pf", [
        (0.3, 0.0), (0.0, 0.01), (0.5, 0.005),
    ])
    def test_bounded_and_nonempty(self, protocol, ucastl, pf):
        config = with_params(
            n=48, protocol=protocol, ucastl=ucastl, pf=pf, seed=11,
        )
        result = run_once(config)
        assert 0.0 <= result.completeness <= 1.0
        # Surviving finishers always include at least their own vote.
        for fraction in result.report.per_member_initial.values():
            assert fraction >= 1.0 / config.n

    @pytest.mark.parametrize("aggregate", SCALAR_AGGREGATES)
    def test_gossip_estimates_physical(self, aggregate):
        """Under faults, finalized estimates stay inside the vote range
        for range-respecting functions (min/max/average)."""
        config = with_params(
            n=64, aggregate=aggregate, ucastl=0.4, pf=0.005, seed=3,
        )
        result = run_once(config)
        if aggregate in ("average", "min", "max"):
            # estimates cannot leave the vote interval
            assert (
                result.mean_estimate_error
                <= config.vote_high - config.vote_low
            )


class TestGossipParameterMatrix:
    @pytest.mark.parametrize("k", [2, 3, 4, 8])
    @pytest.mark.parametrize("fanout", [1, 2, 4])
    def test_hierarchy_shapes(self, k, fanout):
        config = with_params(
            n=48, k=k, fanout_m=fanout, ucastl=0.1, pf=0.0, seed=5,
        )
        result = run_once(config)
        # Loose convergence floor: the k=8/fanout=1 cell sits near 0.40
        # and is seed-sensitive (0.398 on seed 5 under the block-drawn
        # sampler stream, >= 0.43 on neighbouring seeds).
        assert result.completeness > 0.35
        assert result.rounds > 0

    @pytest.mark.parametrize("c", [0.5, 1.0, 2.0])
    def test_round_factor(self, c):
        config = with_params(
            n=48, rounds_factor_c=c, ucastl=0.2, pf=0.0, seed=5,
        )
        result = run_once(config)
        assert 0.0 <= result.completeness <= 1.0
