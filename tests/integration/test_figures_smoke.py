"""Integration smoke tests for the figure harness (scaled-down sweeps).

The real reproductions live in ``benchmarks/``; these verify each figure
function produces a well-formed result quickly, so a broken experiment
definition fails in `pytest tests/` rather than mid-benchmark.
"""

import pytest

from repro.experiments.figures import (
    ALL_FIGURES,
    baseline_comparison,
    complexity_scaling,
    fig4_phase1_analysis,
    fig5_phase1_vs_k,
    fig6_scalability,
    fig7_message_loss,
    fig8_gossip_rate,
    fig9_partition,
    fig10_member_failures,
    fig11_theorem_bound,
)


class TestAnalyticFigures:
    def test_fig4_shape(self):
        figure = fig4_phase1_analysis(n_values=(1000, 2000))
        measured, reference = figure.series
        assert measured.xs == [1000, 2000]
        # Postulate 1: measured incompleteness below 1/N
        for value, bound in zip(measured.ys, reference.ys):
            assert value <= bound

    def test_fig5_monotone(self):
        figure = fig5_phase1_vs_k(k_values=(4, 8, 16))
        ys = figure.primary().ys
        assert ys[0] >= ys[1] >= ys[2]

    def test_renderable(self):
        text = fig4_phase1_analysis(n_values=(1000, 2000)).render()
        assert "fig4" in text


class TestSimulatedFigures:
    def test_fig6_small(self):
        figure = fig6_scalability(n_values=(32, 64), runs=2)
        assert len(figure.primary().xs) == 2
        assert all(0.0 <= y <= 1.0 for y in figure.primary().ys)

    def test_fig7_small(self):
        figure = fig7_message_loss(loss_values=(0.3, 0.6), runs=2)
        assert figure.primary().ys[0] <= figure.primary().ys[1] + 0.2

    def test_fig8_small(self):
        figure = fig8_gossip_rate(round_values=(2, 4), runs=2)
        assert figure.primary().ys[0] >= figure.primary().ys[1]

    def test_fig9_small(self):
        figure = fig9_partition(partl_values=(0.5, 0.9), runs=2)
        assert len(figure.primary().ys) == 2

    def test_fig10_small(self):
        figure = fig10_member_failures(pf_values=(0.001, 0.02), runs=2)
        assert len(figure.primary().ys) == 2

    def test_fig11_small(self):
        figure = fig11_theorem_bound(n_values=(64, 128), runs=2)
        measured, reference = figure.series
        assert reference.ys == [1 / 64, 1 / 128]

    def test_every_figure_registered(self):
        assert set(ALL_FIGURES) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "baselines", "complexity",
            "approx-n", "start-spread", "partial-views",
        }


class TestExtras:
    def test_baseline_comparison_rows(self):
        table = baseline_comparison(
            protocols=("hierarchical_gossip", "flood"), n=32, runs=2
        )
        assert len(table.rows) == 2
        names = [row[0] for row in table.rows]
        assert names == ["hierarchical_gossip", "flood"]
        for row in table.rows:
            assert 0.0 <= row[1] <= 1.0  # completeness

    def test_complexity_scaling_rows(self):
        table = complexity_scaling(n_values=(32, 64), runs=1)
        assert [row[0] for row in table.rows] == [32, 64]
        assert all(row[1] > 0 for row in table.rows)
