"""Registry determinism goldens (satellite S3 of the live-metrics layer).

Three guarantees, each load-bearing for "leave metrics on in
production":

1. **Observation is free of side effects** — a registry-enabled run's
   ``repro-run/1`` record is byte-identical to a plain run's, under
   both the metrics-only shape (array engine) and full telemetry with a
   registry attached (object engine);
2. **Snapshots are canonical** — two registries fed the same seeded run
   produce byte-identical ``snapshot_json()`` output;
3. **Job count is invisible** — per-run records collected through
   ``run_many`` feed a registry to the same bytes at ``jobs=1`` and
   ``jobs=2``, because the records themselves are bit-identical and the
   feed is order-preserving.
"""

import json

from repro.experiments.params import with_params
from repro.experiments.parallel import run_many
from repro.experiments.runner import run_once
from repro.obs.export import run_result_record
from repro.obs.metrics import MetricsRegistry, feed_run_record
from repro.obs.telemetry import RunTelemetry

CONFIG = dict(n=128, seed=5, ucastl=0.4)


def _record_bytes(result) -> str:
    return json.dumps(run_result_record(result), sort_keys=True)


class TestRegistryIsPureObservation:
    def test_metrics_only_run_record_is_byte_identical(self):
        plain = run_once(with_params(**CONFIG))
        fed = run_once(with_params(**CONFIG), registry=MetricsRegistry())
        assert _record_bytes(plain) == _record_bytes(fed)

    def test_metrics_only_keeps_the_array_engine(self):
        # The registry attaches no tracer/metrics/phase sink, so the
        # auto-selection that picks the array-stepped engine for plain
        # runs must be undisturbed — same engine, same result object.
        registry = MetricsRegistry()
        telemetry = RunTelemetry.metrics_only(registry)
        assert telemetry.tracer is None
        assert telemetry.metrics is None
        assert telemetry.phase_sink() is None
        result = run_once(with_params(**CONFIG), telemetry=telemetry)
        assert result.telemetry is None  # attach_summary is off
        assert registry.counter("repro_runs_total").value == 1

    def test_full_telemetry_with_registry_is_byte_identical(self):
        plain = run_once(with_params(**CONFIG), telemetry=RunTelemetry())
        registry = MetricsRegistry()
        fed = run_once(
            with_params(**CONFIG),
            telemetry=RunTelemetry(registry=registry),
        )
        assert _record_bytes(plain) == _record_bytes(fed)
        # Full telemetry streams phase events into the registry live.
        assert registry.counter(
            "repro_phase_events_total", labelnames=("kind",)
        ).labels("finalize").value > 0

    def test_registry_run_totals_match_the_record(self):
        registry = MetricsRegistry()
        result = run_once(with_params(**CONFIG), registry=registry)
        assert registry.counter(
            "repro_sim_messages_sent_total"
        ).value == result.messages_sent
        assert registry.counter(
            "repro_sim_rounds_total"
        ).value == result.rounds
        assert registry.gauge(
            "repro_run_completeness"
        ).value == result.completeness


class TestSnapshotDeterminism:
    def test_same_seed_same_bytes(self):
        snapshots = []
        for __ in range(2):
            registry = MetricsRegistry()
            run_once(with_params(**CONFIG), registry=registry)
            snapshots.append(registry.snapshot_json())
        assert snapshots[0] == snapshots[1]

    def test_full_telemetry_snapshots_are_byte_identical_too(self):
        snapshots = []
        for __ in range(2):
            registry = MetricsRegistry()
            run_once(
                with_params(**CONFIG),
                telemetry=RunTelemetry(registry=registry),
            )
            snapshots.append(registry.snapshot_json())
        assert snapshots[0] == snapshots[1]

    def test_different_seed_different_bytes(self):
        registries = [MetricsRegistry() for __ in range(2)]
        run_once(with_params(n=128, seed=1, ucastl=0.4),
                 registry=registries[0])
        run_once(with_params(n=128, seed=2, ucastl=0.4),
                 registry=registries[1])
        assert registries[0].snapshot_json() != registries[1].snapshot_json()


class TestAcrossJobs:
    def test_registry_bytes_are_job_count_invariant(self):
        configs = [
            with_params(n=64, seed=seed, ucastl=0.4)
            for seed in range(4)
        ]
        snapshots = []
        for jobs in (1, 2):
            registry = MetricsRegistry()
            for result in run_many(configs, jobs=jobs):
                feed_run_record(registry, run_result_record(result))
            snapshots.append(registry.snapshot_json())
        assert snapshots[0] == snapshots[1]
        registry = MetricsRegistry()
        # Sanity: the fed registry saw all four runs.
        for result in run_many(configs, jobs=1):
            feed_run_record(registry, run_result_record(result))
        assert registry.counter("repro_runs_total").value == 4
