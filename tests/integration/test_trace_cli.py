"""Integration tests for the run-telemetry subsystem: byte-identity of
traced runs, JSONL export round-trips, the causal explain query, and the
``repro trace`` / ``--json`` CLI surfaces."""

import dataclasses
import io
import json

import pytest

from repro.cli import main
from repro.experiments.params import with_params
from repro.experiments.runner import run_once
from repro.monitoring import MonitoringSession
from repro.obs.export import load_trace, validate_trace_lines, write_trace
from repro.obs.phase import PhaseTrace
from repro.obs.report import explain, render_phase_report
from repro.obs.telemetry import RunTelemetry

#: The planted-loss scenario the explain acceptance criterion runs on:
#: heavy message loss leaves most members with incomplete aggregates.
LOSSY = dict(n=100, ucastl=0.6, seed=1)


def _traced(config):
    telemetry = RunTelemetry()
    result = run_once(config, telemetry=telemetry)
    return result, telemetry


class TestByteIdentity:
    """Tracing must never change results (golden-level guarantee)."""

    def _assert_identical(self, config):
        base = run_once(config)
        traced, _ = _traced(config)
        compact = run_once(
            dataclasses.replace(config, collect_telemetry=True)
        )
        for result in (traced, compact):
            assert result.completeness == base.completeness
            assert result.messages_sent == base.messages_sent
            assert result.messages_dropped == base.messages_dropped
            assert result.rounds == base.rounds
            assert result.crashes == base.crashes
            assert result.true_value == base.true_value
            assert result.report.per_member == base.report.per_member

    def test_default_point_seed0(self):
        self._assert_identical(with_params(seed=0))

    def test_lossy_point_seed1(self):
        self._assert_identical(with_params(**LOSSY))

    def test_campaign_run(self):
        self._assert_identical(
            with_params(n=48, campaign="rack-failure", seed=9)
        )

    def test_golden_numbers_still_hold_traced(self):
        # The exact seed-0 goldens from test_golden.py, traced.
        result, _ = _traced(with_params(seed=0))
        assert result.completeness == 1.0
        assert result.rounds == 24
        assert result.messages_sent == 9396


class TestTelemetrySummaryOnResult:
    def test_summary_attached_and_consistent(self):
        result, telemetry = _traced(with_params(**LOSSY))
        assert result.telemetry is not None
        assert result.telemetry == telemetry.summary()
        assert result.telemetry.finalize > 0
        assert result.telemetry.bump_up_timeout > 0
        assert result.telemetry.sends > 0

    def test_compact_flag_matches_full_counters(self):
        _, full = _traced(with_params(**LOSSY))
        compact = run_once(
            with_params(**LOSSY, collect_telemetry=True)
        ).telemetry
        full_summary = full.summary()
        assert compact.bump_up_early == full_summary.bump_up_early
        assert compact.bump_up_timeout == full_summary.bump_up_timeout
        assert compact.finalize == full_summary.finalize
        assert (compact.phase_timeouts == full_summary.phase_timeouts)
        # Full run stores events; compact stores none.  Neither drops.
        assert compact.dropped_phase_events == 0

    def test_untelemetered_run_has_none(self):
        assert run_once(with_params(n=32, seed=0)).telemetry is None


class TestJsonlRoundTrip:
    def test_export_reload_preserves_events(self):
        _, telemetry = _traced(with_params(**LOSSY))
        buffer = io.StringIO()
        count = write_trace(telemetry, buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == count
        assert validate_trace_lines(lines) == []
        buffer.seek(0)
        document = load_trace(buffer)
        assert document.phase_events == telemetry.phase_trace.events
        assert document.engine_events == telemetry.tracer.events
        assert document.rounds == telemetry.metrics.samples
        assert document.summary["finalize"] == (
            telemetry.summary().finalize
        )
        assert document.hierarchy == telemetry.hierarchy
        assert document.boxes == telemetry.boxes

    def test_export_is_deterministic(self):
        first = io.StringIO()
        write_trace(_traced(with_params(**LOSSY))[1], first)
        second = io.StringIO()
        write_trace(_traced(with_params(**LOSSY))[1], second)
        assert first.getvalue() == second.getvalue()

    def test_result_record_embedded(self):
        result, telemetry = _traced(with_params(**LOSSY))
        buffer = io.StringIO()
        write_trace(telemetry, buffer)
        buffer.seek(0)
        document = load_trace(buffer)
        assert document.result["schema"] == "repro-run/1"
        assert document.result["completeness"] == result.completeness


class TestExplain:
    def _document(self):
        _, telemetry = _traced(with_params(**LOSSY))
        buffer = io.StringIO()
        write_trace(telemetry, buffer)
        buffer.seek(0)
        return load_trace(buffer), telemetry

    def test_names_phase_and_subtree_for_incomplete_member(self):
        document, telemetry = self._document()
        incomplete = next(
            e.member for e in document.phase_events
            if e.kind == "finalize"
            and e.coverage is not None and e.coverage < 1.0
            and any(t.member == e.member and t.kind == "bump_up_timeout"
                    for t in document.phase_events)
        )
        text = explain(document, incomplete)
        assert "incomplete" in text
        assert "phase" in text
        assert "subtree" in text
        assert "timed out" in text

    def test_complete_member_explained_as_complete(self):
        document, _ = self._document()
        complete = next(
            (e.member for e in document.phase_events
             if e.kind == "finalize" and e.coverage == 1.0),
            None,
        )
        if complete is None:
            pytest.skip("no complete member at this seed")
        assert "nothing was lost" in explain(document, complete)

    def test_crashed_member_explained(self):
        config = with_params(n=200, pf=0.01, seed=0)
        _, telemetry = _traced(config)
        buffer = io.StringIO()
        write_trace(telemetry, buffer)
        buffer.seek(0)
        document = load_trace(buffer)
        crashed = next(
            (e.node for e in document.engine_events
             if e.kind == "crash"),
            None,
        )
        if crashed is None:
            pytest.skip("no crash at this seed")
        finalized = {
            e.member for e in document.phase_events
            if e.kind == "finalize"
        }
        if crashed in finalized:
            pytest.skip("crashed member finalized before dying")
        assert "crashed at round" in explain(document, crashed)

    def test_report_renders(self):
        _, telemetry = self._document()[1], None
        # render over a fresh traced run
        _, telemetry = _traced(with_params(**LOSSY))
        text = render_phase_report(telemetry)
        assert "phase" in text
        assert "finalized" in text
        assert "completeness" in text


class TestTraceCli:
    def test_trace_run_and_validate(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--n", "64", "--ucastl", "0.4", "--seed", "1",
            "--out", str(out), "--explain", "0",
        ]) == 0
        report = capsys.readouterr().out
        assert "phase" in report
        assert "member 0:" in report
        assert main(["trace", "--validate", str(out)]) == 0
        assert "valid repro-trace/1" in capsys.readouterr().out

    def test_trace_query_mode(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--n", "64", "--ucastl", "0.4", "--seed", "1",
            "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main([
            "trace", "--input", str(out), "--explain", "3",
        ]) == 0
        assert "member 3:" in capsys.readouterr().out

    def test_trace_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"record": "mystery"}\n')
        assert main(["trace", "--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_trace_json_record(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        assert main([
            "trace", "--n", "32", "--seed", "0", "--json", str(path),
        ]) == 0
        record = json.loads(path.read_text())
        assert record["schema"] == "repro-run/1"
        assert record["telemetry"]["finalize"] > 0

    def test_trace_max_events_cap(self, tmp_path, capsys):
        assert main([
            "trace", "--n", "64", "--ucastl", "0.4", "--seed", "1",
            "--max-events", "5",
        ]) == 0
        assert "beyond the storage cap" in capsys.readouterr().out


class TestBudgetsCli:
    TRACE_ARGS = ["trace", "--n", "64", "--ucastl", "0.4", "--seed", "1"]

    def test_run_mode_prints_the_budget_table(self, capsys):
        assert main([*self.TRACE_ARGS, "--budgets"]) == 0
        out = capsys.readouterr().out
        assert "per-phase round budgets" in out
        assert "#" in out  # the share bars

    def test_query_mode_is_deterministic(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([*self.TRACE_ARGS, "--out", str(trace)]) == 0
        capsys.readouterr()
        emitted = []
        for name in ("a.json", "b.json"):
            target = tmp_path / name
            assert main([
                "trace", "--input", str(trace),
                "--budgets-json", str(target),
            ]) == 0
            emitted.append(target.read_bytes())
        assert emitted[0] == emitted[1]
        record = json.loads(emitted[0])
        assert record["schema"] == "repro-budgets/1"
        # The budget tiles the round axis, so its totals must equal the
        # embedded result record's.
        result = load_trace(str(trace)).result
        assert record["total_messages"] == result["messages_sent"]
        assert record["total_bytes"] == result["bytes_sent"]
        assert record["total_rounds"] == result["rounds"]

    def test_budgets_json_to_stdout(self, capsys):
        assert main([
            *self.TRACE_ARGS, "--budgets-json", "-",
        ]) == 0
        out = capsys.readouterr().out
        payload = out[out.index('{"phases"'):]
        assert json.loads(payload)["schema"] == "repro-budgets/1"

    def test_compact_trace_cannot_be_budgeted(self, tmp_path, capsys):
        trace = tmp_path / "compact.jsonl"
        assert main([
            "trace", "--n", "32", "--seed", "0", "--max-events", "0",
            "--out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main([
            "trace", "--input", str(trace), "--budgets",
        ]) == 1
        assert "cannot budget" in capsys.readouterr().out


class TestTraceDiffCli:
    def _write_trace(self, tmp_path, name, seed):
        out = tmp_path / name
        assert main([
            "trace", "--n", "64", "--ucastl", "0.4",
            "--seed", str(seed), "--out", str(out), "--explain", "0",
        ]) == 0
        return out

    def test_same_run_diffs_identical(self, tmp_path, capsys):
        a = self._write_trace(tmp_path, "a.jsonl", seed=1)
        b = self._write_trace(tmp_path, "b.jsonl", seed=1)
        capsys.readouterr()
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "traces are identical" in out
        assert "member(s) compared" in out

    def test_different_seeds_diverge_with_triage_detail(
        self, tmp_path, capsys
    ):
        a = self._write_trace(tmp_path, "a.jsonl", seed=1)
        b = self._write_trace(tmp_path, "b.jsonl", seed=2)
        capsys.readouterr()
        assert main(["trace", "--diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "config: 1 differing key(s)" in out
        assert "seed: a=1 b=2" in out
        assert "diverge" in out
        assert "first divergence at event #" in out

    def test_diff_output_is_deterministic(self, tmp_path, capsys):
        a = self._write_trace(tmp_path, "a.jsonl", seed=1)
        b = self._write_trace(tmp_path, "b.jsonl", seed=2)
        capsys.readouterr()
        main(["trace", "--diff", str(a), str(b)])
        first = capsys.readouterr().out
        main(["trace", "--diff", str(a), str(b)])
        second = capsys.readouterr().out
        assert first == second


class TestRunJsonCli:
    def test_run_json_stdout(self, capsys):
        assert main([
            "run", "--n", "32", "--seed", "0", "--json", "-",
        ]) == 0
        out = capsys.readouterr().out
        record = json.loads(out[out.index("{"):])
        assert record["schema"] == "repro-run/1"
        assert record["n"] == 32

    def test_run_and_trace_json_agree(self, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.json"
        assert main([
            "run", "--n", "32", "--seed", "5", "--json", str(run_path),
        ]) == 0
        assert main([
            "trace", "--n", "32", "--seed", "5", "--json",
            str(trace_path),
        ]) == 0
        run_record = json.loads(run_path.read_text())
        trace_record = json.loads(trace_path.read_text())
        for key in ("completeness", "messages_sent", "rounds",
                    "true_value", "crashes"):
            assert run_record[key] == trace_record[key]


class TestMonitoringTelemetry:
    def _session(self, **kwargs):
        def sample(epoch, members, rng):
            return {m: float(rng.random()) for m in members}

        defaults = dict(group_size=64, sample_votes=sample, seed=0)
        defaults.update(kwargs)
        return MonitoringSession(**defaults)

    def test_epoch_counts_phase_timeouts(self):
        # Even a clean network sees a few timeouts (randomized gossip may
        # miss a representative inside the phase window; the value still
        # arrives by other paths), so the signal is monotone, not zero.
        lossy = self._session(ucastl=0.5).run_epoch()
        clean = self._session(ucastl=0.0).run_epoch()
        assert lossy.phase_timeouts > clean.phase_timeouts

    def test_phase_sink_receives_events_without_changing_results(self):
        base = self._session(ucastl=0.3).run_epoch()
        sink = PhaseTrace()
        observed = self._session(ucastl=0.3).run_epoch(phase_sink=sink)
        assert observed.mean_completeness == base.mean_completeness
        assert observed.messages == base.messages
        assert observed.phase_timeouts == base.phase_timeouts
        assert sink.counts["finalize"] > 0
        assert sum(sink.phase_timeouts.values()) == base.phase_timeouts

    def test_monitor_cli_shows_timeouts_and_triggers(self, capsys):
        assert main([
            "monitor", "--n", "32", "--epochs", "2", "--ucastl", "0.4",
            "--trigger-above", "20.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "timeouts" in out
        assert "fired" in out


class TestChaosTelemetry:
    def test_report_carries_merged_telemetry(self):
        from repro.experiments.robustness import robustness_matrix

        report = robustness_matrix(
            campaigns=("paper-iid",), ns=(32,), runs=2, seed=0,
        )
        cell = report.cells[0]
        assert cell.telemetry is not None
        assert cell.telemetry.runs == 2
        assert cell.telemetry.finalize > 0
        document = json.loads(report.to_json())
        assert document["cells"][0]["telemetry"]["runs"] == 2
        header = report.to_csv().splitlines()[0]
        assert "bump_up_timeout" in header
        assert "phase telemetry" in report.render()


class TestSweepTelemetry:
    def test_telemetered_sweep_adds_columns(self):
        from repro.experiments.sweep import Sweep

        sweep = Sweep(
            base=with_params(n=32, collect_telemetry=True), runs=2,
        )
        table = sweep.run(sweep.grid(ucastl=[0.0, 0.5]))
        assert "timeout_bumps" in table.headers
        column = table.headers.index("timeout_bumps")
        clean_bumps, lossy_bumps = table.rows[0][column], table.rows[1][column]
        assert lossy_bumps > clean_bumps

    def test_untelemetered_sweep_unchanged(self):
        from repro.experiments.sweep import Sweep

        sweep = Sweep(base=with_params(n=32), runs=1)
        table = sweep.run(sweep.grid(ucastl=[0.0]))
        assert "timeout_bumps" not in table.headers
