"""Determinism regressions: parallel == serial, FIFO fast path == heap.

Every optimization in this repository must be invisible in the numbers:
the parallel executor fans out independently seeded runs, and the engine's
FIFO delivery fast path replaces the heap only when order provably cannot
change.  These tests pin both equivalences end-to-end through
:func:`run_once`.
"""

from __future__ import annotations

import math

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.params import with_params
from repro.experiments.runner import incompleteness_samples, run_once
from repro.experiments.sweep import Sweep
from repro.sim.engine import SimulationEngine
from repro.sim.network import JitterNetwork, LossyNetwork
from repro.sim.rng import RngRegistry

BASE = with_params(n=64, seed=11)


def _result_fingerprint(result):
    """Every number a RunResult carries, in comparable form."""
    return (
        result.rounds,
        result.messages_sent,
        result.messages_dropped,
        result.bytes_sent,
        result.crashes,
        result.report.mean_completeness,
        result.report.mean_completeness_initial,
        dict(result.report.per_member),
        result.true_value,
        # nan != nan, so compare through a tuple that normalizes it
        None if math.isnan(result.mean_estimate_error)
        else result.mean_estimate_error,
    )


class TestParallelMatchesSerial:
    def test_incompleteness_samples(self):
        serial = incompleteness_samples(BASE, runs=6, jobs=1)
        parallel = incompleteness_samples(BASE, runs=6, jobs=4)
        assert parallel == serial  # bit-identical, not approximately

    def test_sweep_run(self):
        cells = [{"ucastl": 0.1}, {"ucastl": 0.3}]
        serial = Sweep(BASE, runs=4).run(cells, jobs=1)
        parallel = Sweep(BASE, runs=4).run(cells, jobs=4)
        assert parallel.headers == serial.headers
        assert parallel.rows == serial.rows  # bit-identical table

    def test_sweep_rejects_heterogeneous_cells(self):
        with pytest.raises(ValueError, match="cell 1"):
            Sweep(BASE, runs=1).run([{"ucastl": 0.1}, {"pf": 0.01}])


class _HeapOnlyEngine(SimulationEngine):
    """SimulationEngine with the FIFO fast path disabled."""

    def __init__(self, **kwargs):
        super().__init__(fifo_fast_path=False, **kwargs)


class TestFifoFastPathMatchesHeap:
    @pytest.mark.parametrize(
        "config",
        [
            BASE,
            with_params(n=200, seed=2, pf=0.004),
            with_params(n=64, seed=5, push_pull=True),
            with_params(n=64, seed=7, protocol="flat_gossip"),
        ],
        ids=["default", "crashy", "push_pull", "flat_gossip"],
    )
    def test_run_once_identical(self, config, monkeypatch):
        fast = run_once(config)
        monkeypatch.setattr(runner_module, "SimulationEngine",
                            _HeapOnlyEngine)
        heap = run_once(config)
        assert _result_fingerprint(heap) == _result_fingerprint(fast)

    def test_fast_path_engaged_for_constant_latency(self):
        engine = SimulationEngine(network=LossyNetwork(ucastl=0.1),
                                  rngs=RngRegistry(seed=0))
        assert engine._fifo is not None

    def test_fast_path_skipped_for_stochastic_latency(self):
        engine = SimulationEngine(
            network=JitterNetwork(mean_extra_latency=2.0),
            rngs=RngRegistry(seed=0),
        )
        assert engine._fifo is None

    def test_flag_forces_heap(self):
        engine = SimulationEngine(network=LossyNetwork(ucastl=0.1),
                                  rngs=RngRegistry(seed=0),
                                  fifo_fast_path=False)
        assert engine._fifo is None
