"""Integration tests for the extended CLI commands."""

import pytest

from repro.cli import main


class TestShowHierarchy:
    def test_renders_tree(self, capsys):
        assert main(["show-hierarchy", "--n", "16", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "GridBoxHierarchy" in out
        assert "subtree" in out
        assert "box" in out

    def test_occupancy_flag(self, capsys):
        assert main([
            "show-hierarchy", "--n", "32", "--k", "4", "--occupancy",
        ]) == 0
        out = capsys.readouterr().out
        assert "members:" in out

    def test_salt_changes_layout(self, capsys):
        main(["show-hierarchy", "--n", "16", "--salt", "0"])
        first = capsys.readouterr().out
        main(["show-hierarchy", "--n", "16", "--salt", "1"])
        second = capsys.readouterr().out
        assert first != second


class TestMonitorCommand:
    def test_epoch_table(self, capsys):
        assert main([
            "monitor", "--n", "48", "--epochs", "2",
            "--ucastl", "0", "--pf", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch" in out
        assert out.count("\n") >= 3  # header + 2 epochs

    def test_faulty_monitoring_still_reports(self, capsys):
        assert main([
            "monitor", "--n", "48", "--epochs", "2",
            "--ucastl", "0.3", "--pf", "0.01", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "1" in out


class TestExtensionFigures:
    def test_approx_n_via_cli(self, capsys):
        assert main(["approx-n", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "estimate/N" in out

    def test_list_includes_extensions(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for name in ("approx-n", "start-spread", "partial-views"):
            assert name in out
