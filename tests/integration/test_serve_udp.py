"""The ``repro serve`` verb over real localhost UDP sockets.

Skipped wholesale when the environment cannot bind a UDP socket
(sandboxed CI runners); the loopback golden suite covers the protocol
logic either way — these tests pin the asyncio endpoint wiring, the
CLI surface, and the signal contract (SIGTERM = clean exit 0).
"""

import json
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


def _udp_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _udp_available(), reason="cannot bind localhost UDP sockets"
)


def _free_port_base(span: int = 16) -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind(("127.0.0.1", 0))
    base = probe.getsockname()[1]
    probe.close()
    # The span above the probed port is very likely free too; serve
    # retries are out of scope, collisions just fail loudly.
    return base if base + span < 65535 else base - span


class TestGroupMode:
    def test_eight_nodes_converge_and_exit_zero(self, capsys):
        code = main([
            "serve", "--members", "8", "--port", str(_free_port_base()),
            "--tick", "0.01", "--deadline", "30",
            "--rounds-factor-c", "2.0", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        record = json.loads(out)
        assert record["schema"] == "repro-run/1"
        assert record["n"] == 8
        assert record["completeness"] == 1.0

    def test_deadline_exceeded_exits_one(self, capsys):
        code = main([
            "serve", "--members", "8", "--port", str(_free_port_base()),
            "--tick", "0.2", "--deadline", "0.5",
        ])
        capsys.readouterr()
        assert code == 1


class TestSignals:
    def test_sigterm_is_a_clean_exit(self):
        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--members", "4", "--port", str(_free_port_base()),
                "--tick", "0.2", "--deadline", "0",
                "--rounds-factor-c", "50",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={"PYTHONPATH": str(REPO / "src")},
        )
        try:
            time.sleep(1.5)
            child.send_signal(signal.SIGTERM)
            returncode = child.wait(timeout=15)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == 0
        assert b"stopped by signal" in child.stderr.read()


def _free_tcp_base(span: int = 8) -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    base = probe.getsockname()[1]
    probe.close()
    return base if base + span < 65535 else base - span


class TestMetricsEndpoint:
    """--metrics-port + --linger: the group stays scrapeable after
    convergence, then SIGTERM ends the linger cleanly with the JSON
    report (net/liveness stats included) still printed."""

    MEMBERS = 4

    def test_group_exposes_both_formats_and_reports_net_stats(self):
        import json as json_module
        import urllib.request

        metrics_base = _free_tcp_base()
        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--members", str(self.MEMBERS),
                "--port", str(_free_port_base()),
                "--metrics-port", str(metrics_base),
                "--tick", "0.02", "--deadline", "60",
                "--rounds-factor-c", "2.0", "--linger", "60",
                "--json",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={"PYTHONPATH": str(REPO / "src")},
        )

        def fetch(path, node):
            url = f"http://127.0.0.1:{metrics_base + node}{path}"
            with urllib.request.urlopen(url, timeout=2) as response:
                return response.read()

        try:
            deadline = time.monotonic() + 60
            converged = 0
            while time.monotonic() < deadline:
                try:
                    converged = sum(
                        1 for node in range(self.MEMBERS)
                        if json_module.loads(
                            fetch("/metrics.json", node)
                        )["metrics"]["repro_net_terminated"][
                            "samples"][0]["value"] == 1
                    )
                except OSError:
                    converged = 0
                if converged == self.MEMBERS:
                    break
                time.sleep(0.25)
            assert converged == self.MEMBERS, "group never converged"
            for node in range(self.MEMBERS):
                text = fetch("/metrics", node).decode("utf-8")
                assert "# TYPE repro_net_tx_total counter" in text
                snapshot = json_module.loads(fetch("/metrics.json", node))
                assert snapshot["schema"] == "repro-metrics/1"
                assert fetch("/healthz", node) == b"ok\n"
        finally:
            child.send_signal(signal.SIGTERM)
            stdout, stderr = child.communicate(timeout=30)
            if child.poll() is None:
                child.kill()
        assert child.returncode == 0, stderr
        report = json_module.loads(stdout.strip().splitlines()[-1])
        assert report["schema"] == "repro-run/1"
        assert report["completeness"] == 1.0
        assert "messages_rejected" in report
        assert report["net"]["pings_sent"] > 0
        assert report["net"]["pongs_received"] > 0

    def test_out_of_range_metrics_port(self, capsys):
        assert main([
            "serve", "--members", "4",
            "--port", str(_free_port_base()),
            "--metrics-port", "70000",
        ]) == 2
        capsys.readouterr()


class TestUsageErrors:
    def test_out_of_range_node_id(self, capsys):
        assert main([
            "serve", "--members", "4", "--node", "9",
            "--port", str(_free_port_base()),
        ]) == 2
        capsys.readouterr()

    def test_single_node_requires_seed(self, capsys):
        assert main([
            "serve", "--members", "4", "--node", "2",
            "--port", str(_free_port_base()),
        ]) == 2
        capsys.readouterr()
