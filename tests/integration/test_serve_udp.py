"""The ``repro serve`` verb over real localhost UDP sockets.

Skipped wholesale when the environment cannot bind a UDP socket
(sandboxed CI runners); the loopback golden suite covers the protocol
logic either way — these tests pin the asyncio endpoint wiring, the
CLI surface, and the signal contract (SIGTERM = clean exit 0).
"""

import json
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


def _udp_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _udp_available(), reason="cannot bind localhost UDP sockets"
)


def _free_port_base(span: int = 16) -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind(("127.0.0.1", 0))
    base = probe.getsockname()[1]
    probe.close()
    # The span above the probed port is very likely free too; serve
    # retries are out of scope, collisions just fail loudly.
    return base if base + span < 65535 else base - span


class TestGroupMode:
    def test_eight_nodes_converge_and_exit_zero(self, capsys):
        code = main([
            "serve", "--members", "8", "--port", str(_free_port_base()),
            "--tick", "0.01", "--deadline", "30",
            "--rounds-factor-c", "2.0", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        record = json.loads(out)
        assert record["schema"] == "repro-run/1"
        assert record["n"] == 8
        assert record["completeness"] == 1.0

    def test_deadline_exceeded_exits_one(self, capsys):
        code = main([
            "serve", "--members", "8", "--port", str(_free_port_base()),
            "--tick", "0.2", "--deadline", "0.5",
        ])
        capsys.readouterr()
        assert code == 1


class TestSignals:
    def test_sigterm_is_a_clean_exit(self):
        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--members", "4", "--port", str(_free_port_base()),
                "--tick", "0.2", "--deadline", "0",
                "--rounds-factor-c", "50",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={"PYTHONPATH": str(REPO / "src")},
        )
        try:
            time.sleep(1.5)
            child.send_signal(signal.SIGTERM)
            returncode = child.wait(timeout=15)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == 0
        assert b"stopped by signal" in child.stderr.read()


class TestUsageErrors:
    def test_out_of_range_node_id(self, capsys):
        assert main([
            "serve", "--members", "4", "--node", "9",
            "--port", str(_free_port_base()),
        ]) == 2
        capsys.readouterr()

    def test_single_node_requires_seed(self, capsys):
        assert main([
            "serve", "--members", "4", "--node", "2",
            "--port", str(_free_port_base()),
        ]) == 2
        capsys.readouterr()
