"""Integration tests: adversarial campaigns end-to-end — the detection
oracle's must-detect / no-false-positive guarantees, campaign
compilation of the new events, and the cross-baseline robustness
matrix's determinism."""

import json

import pytest

import repro.sanitize as sanitize
from repro.chaos import get_campaign
from repro.chaos.campaign import ChaosCampaign
from repro.chaos.events import (
    LossBurst,
    MessageTampering,
    PartitionWindow,
    RegionPartition,
    SybilJoinStorm,
)
from repro.cli import main
from repro.experiments.params import with_params
from repro.experiments.robustness import robustness_comparison
from repro.experiments.runner import run_once
from repro.sanitize import DoubleCountViolation, ForgedContribution

ADVERSARIAL_CAMPAIGNS = (
    "tamper-forge", "tamper-replay", "sybil-storm", "sybil-pow",
)


class TestDetectionOracle:
    def test_forged_contributions_are_detected_and_attributed(self):
        result = run_once(with_params(n=64, campaign="tamper-forge",
                                      seed=7))
        summary = result.adversarial
        assert summary.injected_forge > 0
        assert summary.reached > 0
        assert summary.detected == summary.reached
        assert summary.false_positives == 0
        caught = sanitize.detections()
        assert caught and all(
            isinstance(error, ForgedContribution) for error in caught
        )
        for error in caught:
            violation = error.violation
            assert violation.member is not None
            assert violation.round is not None
            assert violation.phase is not None
            assert violation.kind in ("count-channel",
                                      "mass-conservation")

    def test_planted_duplicates_fire_double_count_violations(self):
        result = run_once(with_params(n=64, campaign="tamper-replay",
                                      seed=7))
        summary = result.adversarial
        assert summary.injected_duplicate > 0
        assert summary.injected_replay > 0
        assert summary.detected == summary.reached
        assert summary.false_positives == 0
        duplicates = [
            error for error in sanitize.detections()
            if isinstance(error, DoubleCountViolation)
        ]
        assert duplicates
        for error in duplicates:
            assert error.violation.kind == "double-count"
            assert error.violation.member is not None
            assert error.violation.round is not None
            assert error.violation.phase is not None

    def test_clean_run_same_seed_stays_silent(self):
        # The control arm arms the oracle (rate 0.0 keeps the screen on
        # every admission path) but injects nothing: any detection at
        # all is a false positive.
        result = run_once(with_params(n=64, campaign="tamper-control",
                                      seed=7))
        summary = result.adversarial
        assert summary.injected_total == 0
        assert summary.detected == 0
        assert summary.false_positives == 0
        assert sanitize.detections() == ()

    @pytest.mark.parametrize("campaign", ADVERSARIAL_CAMPAIGNS)
    @pytest.mark.parametrize(
        "protocol",
        ("hierarchical_gossip", "flood", "centralized",
         "leader_election"),
    )
    def test_every_reached_injection_is_caught(self, campaign, protocol):
        result = run_once(with_params(
            n=64, campaign=campaign, protocol=protocol, seed=3,
        ))
        summary = result.adversarial
        assert summary is not None
        assert summary.detected == summary.reached
        assert summary.false_positives == 0

    def test_sybil_detections_name_the_foreign_member(self):
        result = run_once(with_params(n=64, campaign="sybil-storm",
                                      seed=5))
        assert result.adversarial.reached > 0
        foreign = [
            error for error in sanitize.detections()
            if error.violation.kind == "foreign-member"
        ]
        assert foreign

    def test_pow_throttles_but_never_weakens_detection(self):
        open_result = run_once(with_params(n=64, campaign="sybil-storm",
                                           seed=5))
        gated_result = run_once(with_params(n=64, campaign="sybil-pow",
                                            seed=5))
        open_summary = open_result.adversarial
        gated_summary = gated_result.adversarial
        assert gated_summary.sybil_admitted < open_summary.sybil_admitted
        assert gated_summary.detected == gated_summary.reached

    def test_adversarial_summary_rides_the_run_record(self):
        from repro.obs.export import run_result_record

        result = run_once(with_params(n=64, campaign="tamper-forge",
                                      seed=1))
        record = run_result_record(result)
        assert record["adversarial"]["detection_rate"] == 1.0
        benign = run_result_record(
            run_once(with_params(n=64, seed=1))
        )
        assert benign["adversarial"] is None


class TestCampaignCompilation:
    def test_overlapping_partitions_rejected_naming_both(self):
        campaign = ChaosCampaign(
            name="clash",
            description="two concurrent partitions",
            events=(
                PartitionWindow(start=0.2, stop=0.6, partl=0.9),
                RegionPartition(start=0.5, stop=0.8, num_regions=3),
            ),
        )
        with pytest.raises(ValueError) as excinfo:
            campaign.compile(horizon=100,
                             box_groups=[(i, i + 1) for i in
                                         range(0, 12, 2)])
        message = str(excinfo.value)
        assert "PartitionWindow" in message
        assert "RegionPartition" in message
        assert "[20, 60)" in message and "[50, 80)" in message

    def test_two_modulo_partitions_also_rejected(self):
        campaign = ChaosCampaign(
            name="clash2",
            description="two concurrent modulo partitions",
            events=(
                PartitionWindow(start=0.1, stop=0.5, partl=0.9),
                PartitionWindow(start=0.4, stop=0.7, partl=0.5, parts=3),
            ),
        )
        with pytest.raises(ValueError, match="overlap"):
            campaign.compile(horizon=100)

    def test_sequential_partitions_allowed(self):
        campaign = ChaosCampaign(
            name="sequential",
            description="back-to-back partitions",
            events=(
                PartitionWindow(start=0.1, stop=0.4, partl=0.9),
                RegionPartition(start=0.4, stop=0.7, num_regions=2),
            ),
        )
        compiled = campaign.compile(
            horizon=100, box_groups=[(i, i + 1) for i in range(0, 12, 2)]
        )
        assert len(compiled.controller.region_windows) == 1

    def test_adversarial_events_need_box_groups(self):
        campaign = ChaosCampaign(
            name="needs-boxes",
            description="tampering without membership",
            events=(MessageTampering(start=0.1, stop=0.5, rate=1.0),),
        )
        with pytest.raises(ValueError, match="box_groups"):
            campaign.compile(horizon=100)

    def test_region_partition_needs_box_groups(self):
        campaign = ChaosCampaign(
            name="needs-boxes-2",
            description="regions without membership",
            events=(RegionPartition(start=0.1, stop=0.5),),
        )
        with pytest.raises(ValueError, match="box_groups"):
            campaign.compile(horizon=100)

    def test_adversarial_flag(self):
        assert get_campaign("tamper-forge").adversarial
        assert get_campaign("sybil-storm").adversarial
        assert not get_campaign("region-outage").adversarial
        assert not get_campaign("paper-iid").adversarial

    def test_stacked_loss_deltas_clamp_to_probability(self):
        # Two overlapping additive bursts on a high base rate: the
        # effective loss must clamp at 1.0, not exceed it (regression
        # for unclamped delta stacking).
        campaign = ChaosCampaign(
            name="stacked-deltas",
            description="overlapping additive loss bursts",
            events=(
                LossBurst(start=0.2, stop=0.6, delta=0.3),
                LossBurst(start=0.4, stop=0.8, delta=0.5),
            ),
        )
        compiled = campaign.compile(horizon=100, base_loss=0.6)
        controller = compiled.controller
        network = compiled.network
        controller.on_begin_round(10)   # no burst active
        assert network.current_loss == 0.6
        controller.on_begin_round(30)   # one delta: 0.6 + 0.3
        assert network.current_loss == pytest.approx(0.9)
        controller.on_begin_round(50)   # both deltas: clamped
        assert network.current_loss == 1.0
        controller.on_begin_round(70)   # second delta only: 0.6 + 0.5
        assert network.current_loss == 1.0
        controller.on_begin_round(90)   # bursts over
        assert network.current_loss == 0.6

    def test_absolute_and_delta_bursts_compose(self):
        campaign = ChaosCampaign(
            name="mixed-bursts",
            description="absolute floor plus additive burst",
            events=(
                LossBurst(start=0.2, stop=0.6, loss=0.5),
                LossBurst(start=0.2, stop=0.6, delta=0.2),
            ),
        )
        compiled = campaign.compile(horizon=100, base_loss=0.25)
        compiled.controller.on_begin_round(30)
        # max(base, absolute) + delta = 0.5 + 0.2
        assert compiled.network.current_loss == pytest.approx(0.7)

    def test_region_outage_crosses_count_drops(self):
        config = with_params(n=64, campaign="region-outage", seed=2)
        result = run_once(config)
        assert 0.0 <= result.completeness <= 1.0
        # The WAN outage must actually degrade vs the benign baseline.
        benign = run_once(with_params(n=64, campaign="paper-iid", seed=2))
        assert result.messages_dropped > benign.messages_dropped


class TestRobustnessComparison:
    def _matrix(self, **kwargs):
        defaults = dict(
            campaigns=("paper-iid", "tamper-forge"),
            protocols=("hierarchical_gossip", "centralized"),
            n=32, runs=2, seed=0,
        )
        defaults.update(kwargs)
        return robustness_comparison(**defaults)

    def test_grid_covers_campaign_by_protocol(self):
        matrix = self._matrix()
        assert [(c.campaign, c.protocol) for c in matrix.cells] == [
            ("paper-iid", "hierarchical_gossip"),
            ("paper-iid", "centralized"),
            ("tamper-forge", "hierarchical_gossip"),
            ("tamper-forge", "centralized"),
        ]
        by_campaign = {c.campaign for c in matrix.cells
                       if c.adversary is not None}
        assert by_campaign == {"tamper-forge"}

    def test_byte_identical_across_jobs(self):
        serial = self._matrix(jobs=1)
        parallel = self._matrix(jobs=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()
        assert serial.render() == parallel.render()

    def test_json_schema_and_adversary_payload(self):
        document = json.loads(self._matrix().to_json())
        assert document["schema"] == "repro-robustness-matrix/1"
        adversarial = [cell for cell in document["cells"]
                       if cell["adversarial"]]
        assert adversarial
        for cell in adversarial:
            assert cell["adversary"]["false_positives"] == 0
            assert cell["detection_rate"] == cell["adversary"][
                "detection_rate"
            ]

    def test_csv_shape(self):
        lines = self._matrix().to_csv().strip().splitlines()
        assert lines[0].startswith("campaign,protocol,adversarial,")
        assert len(lines) == 5

    def test_cli_matrix_deterministic_across_jobs(self, capsys):
        argv = ["chaos", "--matrix", "--campaign", "tamper-replay",
                "--protocol", "hierarchical_gossip", "--protocol",
                "flood", "--n", "32", "--runs", "1", "--seed", "0"]
        assert main(argv + ["--jobs", "1"]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "tamper-replay" in first

    def test_cli_matrix_writes_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "matrix.json"
        csv_path = tmp_path / "matrix.csv"
        assert main([
            "chaos", "--matrix", "--campaign", "sybil-storm",
            "--protocol", "centralized", "--n", "32", "--runs", "1",
            "--json", str(json_path), "--csv", str(csv_path),
        ]) == 0
        document = json.loads(json_path.read_text())
        assert document["schema"] == "repro-robustness-matrix/1"
        assert csv_path.read_text().startswith("campaign,protocol,")


class TestSanitizerAutoEnable:
    def test_adversarial_campaign_forces_the_oracle_on(self):
        # Even with the sanitizer globally off, an adversarial campaign
        # arms it for the run (and restores the previous state after).
        was_active = sanitize.ACTIVE
        sanitize.disable()
        try:
            result = run_once(with_params(n=48, campaign="tamper-forge",
                                          seed=0))
            assert result.adversarial.detected == result.adversarial.reached
            assert result.adversarial.reached > 0
            assert not sanitize.ACTIVE
        finally:
            if was_active:
                sanitize.enable()

    def test_benign_campaign_leaves_sanitizer_state_alone(self):
        was_active = sanitize.ACTIVE
        sanitize.disable()
        try:
            result = run_once(with_params(n=48, campaign="crash-storm",
                                          seed=0))
            assert result.adversarial is None
            assert not sanitize.ACTIVE
        finally:
            if was_active:
                sanitize.enable()
