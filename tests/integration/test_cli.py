"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["fig4"])
        assert args.command == "fig4"

    def test_static_figure_ids_match_the_registry(self):
        # FIGURE_IDS is pinned statically so building the parser never
        # imports the numpy/scipy figure stack; it must track the real
        # registry exactly.
        from repro.cli import FIGURE_IDS
        from repro.experiments.figures import ALL_FIGURES

        assert FIGURE_IDS == tuple(ALL_FIGURES)

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "--n", "64", "--ucastl", "0.1", "--protocol", "flood"]
        )
        assert args.n == 64
        assert args.ucastl == 0.1
        assert args.protocol == "flood"


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "fig11" in out

    def test_analytic_figure(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "1/N" in out

    def test_run_single(self, capsys):
        assert main([
            "run", "--n", "32", "--ucastl", "0", "--pf", "0",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean completeness   : 1.000000" in out

    def test_run_baseline_protocol(self, capsys):
        assert main([
            "run", "--n", "32", "--protocol", "centralized",
            "--ucastl", "0", "--pf", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "centralized" in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "fig5.csv"
        assert main(["fig5", "--csv", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("K,")

    def test_simulated_figure_with_runs(self, capsys):
        assert main(["fig8", "--runs", "1", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "rounds/phase" in out
