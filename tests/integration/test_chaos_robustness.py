"""Integration tests: chaos campaigns end-to-end, the robustness
harness, its determinism guarantee and the ``repro chaos`` CLI verb."""

import json

import pytest

from repro.chaos import campaign_names
from repro.cli import main
from repro.experiments.params import with_params
from repro.experiments.robustness import robustness_matrix
from repro.experiments.runner import run_once


class TestCampaignRuns:
    @pytest.mark.parametrize("name", campaign_names())
    def test_every_campaign_completes(self, name):
        result = run_once(with_params(n=32, campaign=name, seed=1))
        assert result.rounds > 0
        assert 0.0 <= result.completeness <= 1.0

    def test_campaign_runs_are_deterministic(self):
        config = with_params(n=48, campaign="rack-failure", seed=9)
        first, second = run_once(config), run_once(config)
        assert first.completeness == second.completeness
        assert first.messages_sent == second.messages_sent
        assert first.crashes == second.crashes
        assert first.recoveries == second.recoveries

    def test_unknown_campaign_raises(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            run_once(with_params(n=16, campaign="nope"))

    def test_churn_campaign_recovers_members(self):
        result = run_once(with_params(n=128, campaign="churn", seed=3))
        assert result.recoveries > 0

    def test_campaign_on_baseline_protocol(self):
        # Campaigns compile for protocols without a grid hierarchy too
        # (box groups fall back to contiguous chunks).
        result = run_once(with_params(
            n=32, campaign="rack-failure", protocol="flood", seed=2,
        ))
        assert result.crashes > 0


class TestRobustnessMatrix:
    def _report(self, **kwargs):
        defaults = dict(
            campaigns=("paper-iid", "crash-storm"),
            ns=(32,), ks=(4,), fanouts=(6,), runs=2, seed=0,
        )
        defaults.update(kwargs)
        return robustness_matrix(**defaults)

    def test_grid_shape_and_order(self):
        report = self._report()
        assert [c.campaign for c in report.cells] == [
            "paper-iid", "crash-storm"
        ]
        assert all(c.runs == 2 for c in report.cells)

    def test_bound_applies_only_under_assumptions(self):
        report = self._report()
        by_name = {c.campaign: c for c in report.cells}
        assert by_name["paper-iid"].bound_applies
        assert not by_name["crash-storm"].bound_applies
        assert by_name["crash-storm"].bound_holds is None

    def test_bound_holds_on_paper_assumptions(self):
        report = self._report()
        report.assert_bound()  # must not raise
        cell = next(c for c in report.cells if c.bound_applies)
        assert cell.mean_completeness >= cell.bound == 1 - 1 / 32

    def test_low_fanout_exempts_the_bound(self):
        # b = 2 * 0.75 * 0.999 < 4: Theorem 1's premise fails, so even
        # the paper-iid campaign must not be asserted against the bound.
        report = self._report(fanouts=(2,))
        assert all(not c.bound_applies for c in report.cells)

    def test_parallel_equals_serial(self):
        serial = self._report(jobs=1)
        parallel = self._report(jobs=4)
        assert serial.to_json() == parallel.to_json()

    def test_json_round_trips(self):
        report = self._report()
        document = json.loads(report.to_json())
        assert document["schema"] == "repro-robustness/1"
        assert len(document["cells"]) == 2
        assert document["violations"] == 0

    def test_csv_has_header_and_rows(self):
        report = self._report()
        lines = report.to_csv().strip().splitlines()
        assert lines[0].startswith("campaign,n,k,")
        assert len(lines) == 3

    def test_render_is_deterministic(self):
        assert self._report().render() == self._report().render()

    def test_runs_validated(self):
        with pytest.raises(ValueError):
            self._report(runs=0)


class TestChaosCli:
    def test_list_campaigns(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in campaign_names():
            assert name in out

    def test_single_campaign_sweep(self, capsys):
        assert main([
            "chaos", "--campaign", "paper-iid", "--n", "32",
            "--runs", "2", "--seed", "0", "--assert-bound",
        ]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "0 violation(s)" in out

    def test_cli_output_deterministic_across_jobs(self, capsys):
        argv = ["chaos", "--campaign", "crash-storm", "--n", "32",
                "--runs", "2", "--seed", "0"]
        assert main(argv + ["--jobs", "1"]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_json_and_csv_written(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "report.csv"
        assert main([
            "chaos", "--campaign", "loss-burst", "--n", "32",
            "--runs", "1", "--json", str(json_path),
            "--csv", str(csv_path),
        ]) == 0
        document = json.loads(json_path.read_text())
        assert document["schema"] == "repro-robustness/1"
        assert csv_path.read_text().startswith("campaign,")
