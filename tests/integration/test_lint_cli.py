"""Integration tests for the ``repro lint`` CLI verb.

Pins the exit-code contract (0 clean / 1 violations / 2 usage error),
the JSON output over the committed fixture corpus, and the repo's own
acceptance gate: ``repro lint src/`` must be clean.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
CORPUS = REPO / "tests" / "lint_corpus"

#: The corpus' pinned per-rule violation counts (see tests/lint_corpus).
CORPUS_COUNTS = {
    "REP001": 4,
    "REP002": 5,
    "REP003": 3,
    "REP004": 3,
    "REP005": 5,
    "REP006": 4,
}


class TestExitCodes:
    def test_corpus_has_violations(self, capsys):
        assert main(["lint", str(CORPUS)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "REP005" in out

    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", str(CORPUS / "rep001_clean.py")]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "REP999", str(CORPUS)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", str(REPO / "no-such-dir")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_missing_explicit_suppression_file_is_usage_error(
        self, capsys
    ):
        code = main([
            "lint", "--suppressions", str(REPO / "no-such-file"),
            str(CORPUS),
        ])
        assert code == 2
        assert "suppression file not found" in capsys.readouterr().err

    def test_malformed_suppression_file_is_usage_error(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "suppressions"
        bad.write_text("not-a-code foo.py\n")
        code = main([
            "lint", "--suppressions", str(bad), str(CORPUS),
        ])
        assert code == 2
        assert "expected 'CODE path-glob'" in capsys.readouterr().err


class TestReportsAndSelection:
    def test_json_report_over_corpus(self, capsys):
        assert main(["lint", "--format", "json", str(CORPUS)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint/1"
        assert document["counts"] == CORPUS_COUNTS
        assert document["suppressed"] == 1  # the pragma in suppressed.py

    def test_rule_selection_narrows_the_run(self, capsys):
        assert main(["lint", "--rules", "REP001", str(CORPUS)]) == 1
        document_codes = {
            line.split()[1].rstrip(":")
            for line in capsys.readouterr().out.splitlines()
            if ": REP" in line
        }
        assert all(code.startswith("REP001") for code in document_codes)

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in CORPUS_COUNTS:
            assert code in out

    def test_suppression_file_can_baseline_the_corpus(
        self, tmp_path, capsys, monkeypatch
    ):
        (tmp_path / ".reprolint").write_text("* *\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(CORPUS)]) == 0
        assert "suppressed" in capsys.readouterr().out


class TestAcceptanceGate:
    def test_repo_source_tree_is_clean(self, capsys):
        """The repo's own gate: zero unsuppressed violations in src/."""
        assert main(["lint", str(SRC)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_standalone_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lint.cli", "--list-rules"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0
        assert "REP001" in completed.stdout
