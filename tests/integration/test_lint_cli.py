"""Integration tests for the ``repro lint`` CLI verb.

Pins the exit-code contract (0 clean / 1 violations / 2 usage error),
the JSON output over the committed fixture corpus, the whole-program
rules (REP007-REP010 and interprocedural REP002) with their must-fire
counts, the cache/incremental/baseline machinery, and the repo's own
acceptance gate: ``repro lint src/`` must be clean.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
CORPUS = REPO / "tests" / "lint_corpus"

#: The corpus' pinned per-rule violation counts (see tests/lint_corpus).
#: REP002 is 5 per-file findings plus 1 interprocedural finding.
CORPUS_COUNTS = {
    "REP001": 4,
    "REP002": 6,
    "REP003": 3,
    "REP004": 3,
    "REP005": 5,
    "REP006": 4,
    "REP007": 2,
    "REP008": 1,
    "REP009": 3,
    "REP010": 1,
}


def _lint(args):
    """Run the lint verb without touching the repo's default cache."""
    return main(["lint", "--no-cache", *args])


class TestExitCodes:
    def test_corpus_has_violations(self, capsys):
        assert _lint([str(CORPUS)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "REP005" in out

    def test_clean_file_exits_zero(self, capsys):
        assert _lint([str(CORPUS / "rep001_clean.py")]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert _lint(["--rules", "REP999", str(CORPUS)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert _lint([str(REPO / "no-such-dir")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_missing_explicit_suppression_file_is_usage_error(
        self, capsys
    ):
        code = _lint([
            "--suppressions", str(REPO / "no-such-file"), str(CORPUS),
        ])
        assert code == 2
        assert "suppression file not found" in capsys.readouterr().err

    def test_malformed_suppression_file_is_usage_error(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "suppressions"
        bad.write_text("not-a-code foo.py\n")
        code = _lint(["--suppressions", str(bad), str(CORPUS)])
        assert code == 2
        assert "expected 'CODE path-glob'" in capsys.readouterr().err


class TestReportsAndSelection:
    def test_json_report_over_corpus(self, capsys):
        assert _lint(["--format", "json", str(CORPUS)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint/2"
        assert document["counts"] == CORPUS_COUNTS
        assert document["suppressed"] == 1  # the pragma in suppressed.py
        assert document["graph"]["modules"] > 0
        assert document["graph"]["call_sites"] > 0
        assert "timings" in document

    def test_rule_selection_narrows_the_run(self, capsys):
        assert _lint(["--rules", "REP001", str(CORPUS)]) == 1
        document_codes = {
            line.split()[1].rstrip(":")
            for line in capsys.readouterr().out.splitlines()
            if ": REP" in line
        }
        assert all(code.startswith("REP001") for code in document_codes)

    def test_select_accepts_project_rules(self, capsys):
        assert _lint(["--select", "REP007", str(CORPUS)]) == 1
        out = capsys.readouterr().out
        assert out.count("REP007") == CORPUS_COUNTS["REP007"]
        assert "REP001" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in CORPUS_COUNTS:
            assert code in out

    def test_suppression_file_can_baseline_the_corpus(
        self, tmp_path, capsys, monkeypatch
    ):
        (tmp_path / ".reprolint").write_text("* *\n")
        monkeypatch.chdir(tmp_path)
        assert _lint([str(CORPUS)]) == 0
        assert "suppressed" in capsys.readouterr().out


class TestProjectRules:
    """The whole-program rules over the corpus mini-project."""

    def test_each_project_rule_fires_its_pinned_count(self, capsys):
        for code in ("REP007", "REP008", "REP009", "REP010"):
            assert _lint(["--select", code, str(CORPUS)]) == 1
            out = capsys.readouterr().out
            assert out.count(code) == CORPUS_COUNTS[code], code

    def test_interprocedural_rep002_needs_the_call_graph(self, capsys):
        """The miss-proof: the fixture is clean in a per-file run."""
        fixture = CORPUS / "sim" / "rep002_interproc_bad.py"
        assert _lint([str(fixture)]) == 0
        capsys.readouterr()
        # ...but fires when the whole corpus (including timeutil.py,
        # the module hiding the clock) is on the call graph.
        assert _lint(["--select", "REP002", str(CORPUS)]) == 1
        out = capsys.readouterr().out
        assert str(fixture) in out
        assert "timeutil.stamp -> timeutil._now -> time.time" in out

    def test_clean_twins_stay_silent(self, capsys):
        out_dir = CORPUS / "sim"
        for name in ("rep007_clean.py", "rep008_clean.py",
                     "rep009_clean.py"):
            capsys.readouterr()
            assert _lint([
                str(out_dir / name), str(out_dir / "engine.py"),
                str(out_dir / "array_engine.py"),
                str(out_dir / "observe.py"),
            ]) in (0, 1)
            out = capsys.readouterr().out
            assert str(out_dir / name) not in out, name


class TestCacheAndIncremental:
    def test_warm_cache_reports_hits_and_same_result(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache.json"
        assert main([
            "lint", "--cache", str(cache), str(CORPUS),
        ]) == 1
        cold = capsys.readouterr().out
        assert "miss(es)" in cold
        assert main([
            "lint", "--cache", str(cache), str(CORPUS),
        ]) == 1
        warm = capsys.readouterr().out
        assert "0 miss(es)" in warm
        # identical findings either way
        strip = lambda text: [
            line for line in text.splitlines() if ": REP" in line
        ]
        assert strip(cold) == strip(warm)

    def test_cache_invalidates_on_content_change(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        target = tmp_path / "module.py"
        target.write_text("import random\n\ndef f():\n"
                          "    return random.random()\n")
        assert main(["lint", "--cache", str(cache), str(target)]) == 1
        capsys.readouterr()
        target.write_text("def f():\n    return 0.5\n")
        assert main(["lint", "--cache", str(cache), str(target)]) == 0
        out = capsys.readouterr().out
        assert "1 miss(es)" in out

    def test_changed_mode_filters_to_modified_files(
        self, tmp_path, capsys, monkeypatch
    ):
        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(
            ["git", "init", "-q", str(tmp_path)], check=True
        )
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def g():\n    return 2\n")
        subprocess.run(
            [*git, "-C", str(tmp_path), "add", "-A"], check=True
        )
        subprocess.run(
            [*git, "-C", str(tmp_path), "commit", "-qm", "seed"],
            check=True,
        )
        dirty.write_text(
            "import random\n\ndef g():\n    return random.random()\n"
        )
        monkeypatch.chdir(tmp_path)
        assert _lint(["--changed", "HEAD", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "dirty.py" in out
        assert "clean.py" not in out

    def test_changed_outside_a_repo_is_usage_error(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text("x = 1\n")
        assert _lint(["--changed", "HEAD", str(tmp_path)]) == 2
        assert capsys.readouterr().err


class TestBaseline:
    def test_baseline_masks_known_violations(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert _lint([
            "--write-baseline", str(baseline), str(CORPUS),
        ]) == 0
        document = json.loads(baseline.read_text())
        assert document["schema"] == "repro-lint-baseline/1"
        capsys.readouterr()
        assert _lint(["--baseline", str(baseline), str(CORPUS)]) == 0
        out = capsys.readouterr().out
        assert "baseline: 32 known violation(s) filtered" in out

    def test_new_violations_break_through_the_baseline(
        self, tmp_path, capsys
    ):
        target = tmp_path / "module.py"
        target.write_text("import random\n\ndef f():\n"
                          "    return random.random()\n")
        baseline = tmp_path / "baseline.json"
        assert _lint([
            "--write-baseline", str(baseline), str(target),
        ]) == 0
        target.write_text(
            "import random\n\ndef f():\n    return random.random()\n"
            "\ndef g():\n    return random.random()\n"
        )
        capsys.readouterr()
        assert _lint(["--baseline", str(baseline), str(target)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        assert _lint([
            "--baseline", str(tmp_path / "nope.json"), str(CORPUS),
        ]) == 2
        assert capsys.readouterr().err


class TestAcceptanceGate:
    def test_repo_source_tree_is_clean(self, capsys):
        """The repo's own gate: zero unsuppressed violations in src/."""
        assert _lint([str(SRC)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_standalone_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lint.cli", "--list-rules"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0
        assert "REP001" in completed.stdout
        assert "REP009" in completed.stdout
