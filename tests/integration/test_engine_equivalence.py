"""Cross-engine golden equivalence: array-stepped == object-stepped.

The array-stepped engine (`repro.sim.array_engine` driving
`repro.core.array_stepper`) promises *bit-identical* runs to the
object-stepped `SimulationEngine` on every configuration it accepts:
same estimates, same per-member completeness, same network statistics,
same phase events, same sanitizer outcomes — for every seed, chaos
campaign and job count.  These tests pin that promise; any divergence
is a bug in the array path, never an accepted drift.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.chaos import campaign_names
from repro.experiments.parallel import run_many
from repro.experiments.params import with_params
from repro.experiments.runner import run_once
from repro.obs.export import run_result_record


def _records(config):
    """(repro-run/1 record, per-member maps) for both engines."""
    out = {}
    for engine in ("object", "array"):
        result = run_once(replace(config, engine=engine))
        out[engine] = (
            run_result_record(result),
            result.report.per_member,
            result.report.per_member_initial,
        )
    return out


def _assert_identical(config):
    got = _records(config)
    assert got["array"] == got["object"]


BASIC_CONFIGS = [
    pytest.param(with_params(seed=seed), id=f"paper-defaults-seed{seed}")
    for seed in range(3)
] + [
    pytest.param(with_params(n=128, k=8, seed=1), id="n128-k8"),
    pytest.param(
        with_params(n=128, partl=0.9, seed=0), id="partitioned"
    ),
    pytest.param(
        with_params(n=128, start_spread=5, seed=2), id="start-spread"
    ),
    pytest.param(
        with_params(n=256, view_size=50, seed=0), id="partial-views"
    ),
    pytest.param(with_params(n=128, pf=0.0, seed=0), id="no-failures"),
    pytest.param(
        with_params(n=128, max_sends_per_round=3, seed=1),
        id="bandwidth-capped",
    ),
    pytest.param(
        with_params(n=128, early_bump=False, seed=0), id="no-early-bump"
    ),
    pytest.param(
        with_params(n=128, n_estimate=200, seed=0), id="n-estimate"
    ),
    pytest.param(
        with_params(n=128, aggregate="min", seed=1), id="min-aggregate"
    ),
]


@pytest.mark.parametrize("config", BASIC_CONFIGS)
def test_equivalent_on_basic_configs(config):
    _assert_identical(config)


def test_campaign_registry_is_covered():
    # The campaign sweep below runs every registered campaign; if one is
    # added, it is automatically picked up (this just pins the count the
    # suite was designed against, so silent registry shrinkage fails).
    assert len(campaign_names()) >= 7


@pytest.mark.parametrize("campaign", campaign_names())
def test_equivalent_on_campaigns(campaign):
    _assert_identical(with_params(n=128, campaign=campaign, seed=0))


def test_equivalent_across_job_counts():
    configs = [with_params(n=128, seed=seed) for seed in range(4)]
    serial = [run_result_record(r) for r in run_many(configs, jobs=1)]
    parallel = [run_result_record(r) for r in run_many(configs, jobs=2)]
    assert serial == parallel


def test_equivalent_under_sanitizer():
    from repro import sanitize

    config = with_params(n=128, seed=0)
    sanitize.enable()
    try:
        got = _records(config)
    finally:
        sanitize.disable()
    assert got["array"] == got["object"]


def test_forced_array_engine_rejects_unsupported():
    with pytest.raises(ValueError, match="push-pull"):
        run_once(with_params(n=64, engine="array", push_pull=True))
    with pytest.raises(ValueError, match="single-value"):
        run_once(with_params(n=64, engine="array", batch_values=False))
    with pytest.raises(ValueError, match="protocol"):
        run_once(with_params(n=64, engine="array", protocol="flood"))


def test_auto_falls_back_silently_on_unsupported():
    object_result = run_once(
        with_params(n=64, engine="object", push_pull=True)
    )
    auto_result = run_once(with_params(n=64, engine="auto", push_pull=True))
    assert run_result_record(auto_result) == run_result_record(object_result)


# -- phase-event byte-identity ------------------------------------------

def _phase_events(config, engine):
    """Run a manually assembled world, recording every phase event."""
    from repro.core.observe import PhaseSink
    from repro.experiments import runner as runner_mod
    from repro.sim.rng import RngRegistry

    events = []

    class Recorder(PhaseSink):
        def emit(self, event):
            events.append(event)

    rngs = RngRegistry(seed=config.seed)
    votes = runner_mod._make_votes(config, rngs)
    processes, max_rounds = runner_mod._build_processes(
        config, votes, rngs, phase_sink=Recorder()
    )
    network = runner_mod._make_network(config)
    failure_model = runner_mod._make_failures(config)
    world = runner_mod._make_engine(
        replace(config, engine=engine), None, processes, network,
        failure_model, rngs, max_rounds,
    )
    world.add_processes(processes)
    world.run()
    return events


@pytest.mark.parametrize(
    "config",
    [
        pytest.param(with_params(n=128, seed=0), id="defaults"),
        pytest.param(
            with_params(n=128, start_spread=4, seed=1), id="start-spread"
        ),
    ],
)
def test_phase_event_streams_identical(config):
    object_events = _phase_events(config, "object")
    array_events = _phase_events(config, "array")
    assert len(object_events) > 0
    assert array_events == object_events
