"""Cross-runtime golden suite: the simulator is the net runtime's oracle.

The loopback harness (repro.net.loopback) drives real NetNodes — real
codec, real address books, real per-node contexts — under the
simulator's delivery model (one-tick latency, lossless).  Under the
same seed the two substrates must agree *exactly*: same gossip draws,
same estimates, same completeness, same round count.  Anything less
means the net runtime hosts a subtly different protocol and its
behaviour stops being evidence about the paper's.

Also pinned here: Theorem 1's completeness floor on the net runtime,
repro-run/1 schema compatibility of net reports, and bootstrap-mode
convergence (staggered starts via the join handshake).
"""

import math

import pytest

from repro.experiments.params import with_params
from repro.experiments.runner import run_once
from repro.net.loopback import run_loopback_group
from repro.obs.export import RUN_SCHEMA, run_result_record

LOSSLESS = dict(ucastl=0.0, pf=0.0)


def _pair(n, seed, rounds_factor_c=1.0):
    """(simulated result, loopback net report) under one seed."""
    sim = run_once(with_params(
        n=n, seed=seed, rounds_factor_c=rounds_factor_c, **LOSSLESS,
    ))
    net = run_loopback_group(
        n, seed=seed, rounds_factor_c=rounds_factor_c,
    )
    return sim, net


class TestSimulatorOracle:
    @pytest.mark.parametrize("n,seed", [(16, 3), (32, 0), (64, 11)])
    def test_lossless_runs_agree_exactly(self, n, seed):
        sim, net = _pair(n, seed)
        assert net.converged
        assert net.rounds == sim.rounds
        assert net.completeness == sim.completeness
        assert net.mean_estimate_error == sim.mean_estimate_error
        assert net.true_value == sim.true_value

    def test_every_member_finalizes_a_finite_estimate(self):
        __, net = _pair(32, 5)
        assert len(net.estimates) == 32
        for member, estimate in net.estimates.items():
            assert math.isfinite(estimate), member

    def test_theorem_bound_on_the_net_runtime(self):
        """Completeness >= 1 - 1/N with an adequate round budget."""
        for seed in range(3):
            net = run_loopback_group(32, seed=seed, rounds_factor_c=2.0)
            assert net.converged
            assert net.completeness >= 1.0 - 1.0 / 32


class TestRunRecordCompatibility:
    def test_net_report_speaks_repro_run_1(self):
        __, net = _pair(16, 3)
        record = run_result_record(net)
        assert record["schema"] == RUN_SCHEMA
        assert record["protocol"] == "hierarchical_gossip"
        assert record["n"] == 16
        assert record["campaign"] is None
        assert record["messages_rejected"] == 0
        assert isinstance(record["messages_sent"], int)
        assert isinstance(record["bytes_sent"], int)
        assert 0.0 <= record["completeness"] <= 1.0

    def test_sim_and_net_records_share_one_schema_shape(self):
        sim, net = _pair(16, 3)
        assert set(run_result_record(sim)) == set(run_result_record(net))

    def test_net_key_carries_liveness_stats_only_for_live_runs(self):
        sim, net = _pair(16, 3)
        # Both substrates emit the same "net" key; the simulator has no
        # datagram plane, so its value is None, while a live report
        # carries the liveness/codec accounting repro top builds on.
        assert run_result_record(sim)["net"] is None
        stats = run_result_record(net)["net"]
        assert stats["pings_sent"] > 0
        assert stats["pongs_received"] > 0
        assert stats["mean_rtt_ticks"] == 2.0  # loopback: 1 tick each way
        assert stats["suspected_peers"] == 0


class TestBootstrap:
    def test_join_handshake_converges_with_staggered_starts(self):
        net = run_loopback_group(
            16, seed=3, rounds_factor_c=2.0, bootstrap=True,
        )
        assert net.converged
        assert net.completeness >= 1.0 - 1.0 / 16
        # Every estimate agrees despite the staggered protocol starts
        # (isclose: average merge order differs per member, so the
        # last-ulp float rounding may too).
        for estimate in net.estimates.values():
            assert math.isclose(
                estimate, net.true_value, rel_tol=1e-12
            )

    def test_unstarted_gossip_is_dropped_loudly(self):
        net = run_loopback_group(
            16, seed=3, rounds_factor_c=2.0, bootstrap=True,
        )
        assert net.messages_dropped >= 0  # counter is wired through


class TestDeterminism:
    def test_loopback_runs_are_reproducible(self):
        first = run_loopback_group(24, seed=9)
        second = run_loopback_group(24, seed=9)
        assert first.estimates == second.estimates
        assert first.rounds == second.rounds
        assert first.messages_sent == second.messages_sent
        assert first.bytes_sent == second.bytes_sent

    def test_seed_changes_the_run(self):
        a = run_loopback_group(24, seed=1)
        b = run_loopback_group(24, seed=2)
        assert a.true_value != b.true_value
