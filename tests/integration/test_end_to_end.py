"""Integration tests: full protocol runs across all substrates."""

import pytest

from repro import aggregate_once
from repro.core import (
    AverageAggregate,
    FairHash,
    GossipParams,
    GridAssignment,
    GridBoxHierarchy,
    MaxAggregate,
    TopologicalHash,
    build_hierarchical_gossip_group,
    measure_completeness,
)
from repro.experiments.params import with_params
from repro.experiments.runner import run_once
from repro.sim import (
    CrashRecovery,
    CrashWithoutRecovery,
    LossyNetwork,
    Network,
    PartitionedNetwork,
    RngRegistry,
    ScheduledFailures,
    SimulationEngine,
    TopologyNetwork,
)


class TestQuickstartPath:
    def test_aggregate_once_api(self):
        votes = {i: 20.0 + (i % 7) for i in range(128)}
        result = aggregate_once(votes, aggregate="average", seed=7)
        assert result.completeness == 1.0
        expected = sum(votes.values()) / len(votes)
        assert result.true_value == pytest.approx(expected)

    def test_aggregate_once_with_faults(self):
        votes = {i: 1.0 for i in range(100)}
        result = aggregate_once(votes, ucastl=0.3, pf=0.002, seed=1)
        assert 0.8 <= result.completeness <= 1.0
        assert result.crashes >= 0

    def test_arbitrary_member_ids(self):
        votes = {10_000 + 7 * i: float(i) for i in range(40)}
        result = aggregate_once(votes, seed=2)
        assert result.completeness == 1.0


class TestCrashStorm:
    def test_mass_crash_mid_protocol_degrades_gracefully(self):
        """Crash 30% of the group at once mid-run: survivors still finish
        with a mostly-complete estimate of the surviving votes."""
        votes = {i: float(i) for i in range(100)}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(100, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(0))
        processes = build_hierarchical_gossip_group(
            votes, function, assignment, GossipParams(rounds_factor_c=1.5)
        )
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            failure_model=ScheduledFailures(crash_at={8: range(0, 30)}),
            rngs=RngRegistry(3),
            max_rounds=300,
        )
        engine.add_processes(processes)
        engine.run()
        report = measure_completeness(processes, group_size=100)
        assert report.crashed == 30
        assert report.mean_completeness > 0.9

    def test_everyone_crashes_no_hang(self):
        votes = {i: 1.0 for i in range(20)}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(20, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(0))
        processes = build_hierarchical_gossip_group(
            votes, function, assignment
        )
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            failure_model=ScheduledFailures(crash_at={2: range(20)}),
            rngs=RngRegistry(0),
            max_rounds=100,
        )
        engine.add_processes(processes)
        engine.run()
        report = measure_completeness(processes, group_size=20)
        assert report.crashed == 20
        assert report.mean_completeness == 0.0


class TestCrashRecovery:
    def test_recovered_members_rejoin_and_finish(self):
        votes = {i: float(i) for i in range(40)}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(40, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(1))
        processes = build_hierarchical_gossip_group(
            votes, function, assignment, GossipParams(rounds_factor_c=2.0)
        )
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            failure_model=ScheduledFailures(
                crash_at={3: [0, 1, 2]}, recover_at={6: [0, 1, 2]}
            ),
            rngs=RngRegistry(1),
            max_rounds=300,
        )
        engine.add_processes(processes)
        engine.run()
        recovered = [processes[i] for i in (0, 1, 2)]
        assert all(p.alive for p in recovered)
        assert all(p.result is not None for p in recovered)


class TestPartitionHealing:
    def test_total_partition_splits_estimates(self):
        """partl=1.0: each half computes (at best) its own half's votes."""
        result = run_once(
            with_params(n=64, partl=1.0, ucastl=0.0, pf=0.0, seed=4)
        )
        assert result.completeness < 0.8
        # but within-half aggregation still mostly works
        assert result.completeness > 0.3


class TestTopologyAwareDeployment:
    def test_adhoc_sensor_field_aggregation(self):
        """End-to-end over the ad-hoc substrate: positions -> radio graph
        -> multihop loss -> topologically aware grid boxes."""
        import numpy as np

        from repro.topology.adhoc import AdHocNetwork
        from repro.topology.field import ScalarField, SensorField

        rng = np.random.default_rng(0)
        sensors = SensorField.uniform_random(64, rng)
        votes = sensors.votes(ScalarField(base=20.0, gradient=(5.0, 0.0)), rng)
        adhoc = AdHocNetwork(sensors.positions, radius=0.35)
        assert adhoc.is_connected()

        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(64, 4)
        topo_hash = TopologicalHash(sensors.positions, k=4)
        assignment = GridAssignment(hierarchy, votes, topo_hash)
        processes = build_hierarchical_gossip_group(
            votes, function, assignment, GossipParams(rounds_factor_c=2.0)
        )
        engine = SimulationEngine(
            network=TopologyNetwork(
                hops=adhoc.hops, hop_loss=0.02, max_message_size=1 << 20
            ),
            rngs=RngRegistry(5),
            max_rounds=400,
        )
        engine.add_processes(processes)
        engine.run()
        report = measure_completeness(processes, group_size=64)
        assert report.mean_completeness > 0.95

    def test_topology_hash_reduces_early_phase_distance(self):
        """With a topologically aware hash, phase-1 messages travel fewer
        hops than with a fair hash (the Section 6.1 load argument)."""
        import numpy as np

        from repro.topology.adhoc import AdHocNetwork
        from repro.topology.field import SensorField

        rng = np.random.default_rng(1)
        sensors = SensorField.uniform_random(64, rng)
        adhoc = AdHocNetwork(sensors.positions, radius=0.35)
        votes = {m: 1.0 for m in sensors.positions}
        hierarchy = GridBoxHierarchy(64, 4)

        def mean_phase1_hops(hash_function):
            assignment = GridAssignment(hierarchy, votes, hash_function)
            distances = []
            for member in votes:
                for peer in assignment.peers_in_subtree(
                    member, 1, list(votes)
                ):
                    hops = adhoc.hops(member, peer)
                    if hops is not None:
                        distances.append(hops)
            return sum(distances) / max(1, len(distances))

        topo = mean_phase1_hops(TopologicalHash(sensors.positions, k=4))
        fair = mean_phase1_hops(FairHash(salt=0))
        assert topo < fair


class TestBandwidthDiscipline:
    def test_bandwidth_cap_slows_but_does_not_crash(self):
        votes = {i: 1.0 for i in range(32)}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(32, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(0))
        processes = build_hierarchical_gossip_group(
            votes, function, assignment
        )
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20, max_sends_per_round=1),
            rngs=RngRegistry(0),
            max_rounds=200,
        )
        engine.add_processes(processes)
        engine.run()
        assert engine.network.stats.rejected_bandwidth > 0
        report = measure_completeness(processes, group_size=32)
        assert report.mean_completeness > 0.5
