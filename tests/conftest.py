"""Shared test configuration.

Hypothesis profile: simulation-backed properties legitimately take longer
than the default 200ms deadline on slow machines, so deadlines are off;
example counts stay at each test's explicit setting.  Derandomization
keeps CI runs stable — the RNG-heavy properties already explore widely
through their own seeded strategies.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
