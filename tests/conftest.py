"""Shared test configuration.

Hypothesis profile: simulation-backed properties legitimately take longer
than the default 200ms deadline on slow machines, so deadlines are off;
example counts stay at each test's explicit setting.  Derandomization
keeps CI runs stable — the RNG-heavy properties already explore widely
through their own seeded strategies.
"""

import os

from hypothesis import HealthCheck, settings

# The runtime aggregation sanitizer (repro.sanitize) is on for the whole
# suite: it draws no randomness and mutates no simulation state, so
# results are byte-identical — it only turns silent invariant violations
# (double counts, mass loss, phase-clock skew) into structured failures.
# Opt out with REPRO_SANITIZE=0; REPRO_SANITIZE=1 is the CI spelling.
if os.environ.get("REPRO_SANITIZE", "").strip() != "0":
    from repro import sanitize

    sanitize.enable()

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
