"""Unit tests for the CIDR hash and Internet domain topology."""

import pytest

from repro.core.gridbox import GridAssignment, GridBoxHierarchy
from repro.core.hashing import CidrHash
from repro.sim.network import Message
from repro.sim.rng import RngRegistry
from repro.topology.internet import DomainNetwork, InternetGroup


class TestCidrHash:
    def test_prefix_locality(self):
        """Addresses sharing a long prefix land in the same box."""
        h = CidrHash(bits=32)
        base = 0x0A000000  # 10.0.0.0
        assert h.box_of(base + 1, 64) == h.box_of(base + 200, 64)
        far = 0xC0000000   # 192.0.0.0
        assert h.box_of(base, 64) != h.box_of(far, 64)

    def test_unit_value_orders_addresses(self):
        h = CidrHash(bits=32)
        assert h.unit_value(0) < h.unit_value(1 << 31)

    def test_wraps_oversized_ids(self):
        h = CidrHash(bits=8)
        assert h.unit_value(256) == h.unit_value(0)

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            CidrHash(bits=0)

    def test_balanced_on_uniform_plan(self):
        group = InternetGroup(sites=16, hosts_per_site=8)
        h = CidrHash(bits=32)
        hierarchy = GridBoxHierarchy(len(group), 4)
        assignment = GridAssignment(hierarchy, group.addresses, h)
        occupied = sum(
            1 for b in range(hierarchy.num_boxes)
            if assignment.members_of_box(b)
        )
        assert occupied >= hierarchy.num_boxes // 2

    def test_site_members_share_boxes(self):
        group = InternetGroup(sites=16, hosts_per_site=8)
        h = CidrHash(bits=32)
        hierarchy = GridBoxHierarchy(len(group), 4)
        assignment = GridAssignment(hierarchy, group.addresses, h)
        for site in range(group.sites):
            boxes = {
                assignment.box_of(a)
                for a in group.addresses
                if group.site_of(a) == site
            }
            assert len(boxes) <= 2  # a site's hosts cluster tightly


class TestInternetGroup:
    def test_address_plan(self):
        group = InternetGroup(sites=4, hosts_per_site=3, bits=16)
        assert len(group) == 12
        block = (1 << 16) // 4
        assert group.addresses[3] == block  # second site's base

    def test_site_of(self):
        group = InternetGroup(sites=2, hosts_per_site=2, bits=8)
        a, b, c, d = group.addresses
        assert group.site_of(a) == group.site_of(b) == 0
        assert group.site_of(c) == group.site_of(d) == 1

    def test_same_subnet(self):
        group = InternetGroup(sites=2, hosts_per_site=2, bits=16)
        a, b, __, __ = group.addresses
        assert group.same_subnet(a, b, subnet_bits=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            InternetGroup(sites=0, hosts_per_site=1)
        with pytest.raises(ValueError):
            InternetGroup(sites=2, hosts_per_site=300, bits=8)


class TestDomainNetwork:
    def _group(self):
        return InternetGroup(sites=2, hosts_per_site=4, bits=16)

    def test_relationship_classification(self):
        group = self._group()
        network = DomainNetwork(
            group, lan_loss=0.0, site_loss=0.5, wan_loss=1.0
        )
        same_lan = Message(group.addresses[0], group.addresses[1], "x")
        cross_site = Message(group.addresses[0], group.addresses[4], "x")
        assert network.loss_probability(same_lan) == 0.0
        assert network.loss_probability(cross_site) == 1.0

    def test_wan_counter(self):
        group = self._group()
        network = DomainNetwork(group)
        rngs = RngRegistry(0)
        network.plan_delivery(
            Message(group.addresses[0], group.addresses[4], "x"), rngs
        )
        network.plan_delivery(
            Message(group.addresses[0], group.addresses[1], "x"), rngs
        )
        assert network.wan_messages == 1

    def test_wan_latency_slower(self):
        group = self._group()
        network = DomainNetwork(group, wan_latency=5, lan_loss=0.0,
                                wan_loss=0.0)
        rngs = RngRegistry(0)
        lan = network.plan_delivery(
            Message(group.addresses[0], group.addresses[1], "x",
                    sent_round=0), rngs
        )
        wan = network.plan_delivery(
            Message(group.addresses[0], group.addresses[4], "x",
                    sent_round=0), rngs
        )
        assert lan == 1
        assert wan == 5

    def test_loss_validated(self):
        with pytest.raises(ValueError):
            DomainNetwork(self._group(), wan_loss=1.5)
