"""Unit tests for the stochastic-latency network."""

import pytest

from repro.sim.network import JitterNetwork, Message
from repro.sim.rng import RngRegistry


def _delivery(network, rngs, sent_round=0):
    return network.plan_delivery(
        Message(src=0, dest=1, payload="x", sent_round=sent_round), rngs
    )


class TestJitterNetwork:
    def test_zero_jitter_is_fixed_latency(self):
        network = JitterNetwork(ucastl=0.0, mean_extra_latency=0.0)
        rngs = RngRegistry(0)
        for __ in range(20):
            assert _delivery(network, rngs) == 1

    def test_latency_at_least_one(self):
        network = JitterNetwork(ucastl=0.0, mean_extra_latency=2.0)
        rngs = RngRegistry(1)
        for __ in range(200):
            assert _delivery(network, rngs) >= 1

    def test_latency_capped(self):
        network = JitterNetwork(
            ucastl=0.0, mean_extra_latency=50.0, max_latency=5
        )
        rngs = RngRegistry(2)
        for __ in range(200):
            assert _delivery(network, rngs) <= 5

    def test_mean_latency_tracks_parameter(self):
        network = JitterNetwork(
            ucastl=0.0, mean_extra_latency=2.0, max_latency=1000
        )
        rngs = RngRegistry(3)
        samples = [_delivery(network, rngs) for __ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 2.6 < mean < 3.4  # 1 + ~2 extra

    def test_loss_still_applies(self):
        network = JitterNetwork(ucastl=1.0, mean_extra_latency=1.0)
        rngs = RngRegistry(4)
        assert _delivery(network, rngs) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterNetwork(mean_extra_latency=-1.0)
        with pytest.raises(ValueError):
            JitterNetwork(max_latency=0)
