"""Tests for the top-level package API surface."""

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_exported(self):
        for name in (
            "aggregate_once", "run_once", "with_params", "PAPER_DEFAULTS",
            "GridBoxHierarchy", "GossipParams", "MonitoringSession",
            "build_mib_group", "measure_completeness",
        ):
            assert name in repro.__all__


class TestAggregateOnce:
    def test_returns_run_result(self):
        result = repro.aggregate_once({i: 1.0 for i in range(16)}, seed=1)
        assert isinstance(result, repro.RunResult)
        assert result.true_value == 1.0

    def test_respects_aggregate_choice(self):
        votes = {0: 1.0, 1: 9.0, 2: 5.0, 3: 5.0}
        result = repro.aggregate_once(votes, aggregate="max", seed=0)
        assert result.true_value == 9.0

    def test_faulty_network_parameters(self):
        result = repro.aggregate_once(
            {i: float(i) for i in range(64)},
            ucastl=0.4, pf=0.01, fanout_m=3, rounds_factor_c=1.5, seed=2,
        )
        assert 0.0 <= result.completeness <= 1.0
        assert result.messages_dropped > 0

    def test_single_vote_group(self):
        result = repro.aggregate_once({42: 3.0}, seed=0)
        assert result.completeness == 1.0
        assert result.true_value == 3.0
