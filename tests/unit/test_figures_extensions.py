"""Unit tests for the extension experiment definitions (tiny sweeps)."""

from repro.experiments.figures import (
    ext_approximate_n,
    ext_partial_views,
    ext_start_spread,
)


class TestApproximateN:
    def test_points_match_factors(self):
        figure = ext_approximate_n(factors=(0.5, 1.0, 2.0), n=48, runs=2)
        assert figure.primary().xs == [0.5, 1.0, 2.0]
        assert all(0.0 <= y <= 1.0 for y in figure.primary().ys)

    def test_exact_estimate_best_or_tied(self):
        figure = ext_approximate_n(factors=(1.0, 4.0), n=48, runs=3)
        exact, over = figure.primary().ys
        assert exact <= over + 0.05

    def test_csv_export(self):
        figure = ext_approximate_n(factors=(1.0,), n=32, runs=1)
        assert figure.to_csv().startswith("estimate/N,")


class TestStartSpread:
    def test_zero_spread_equals_simultaneous(self):
        figure = ext_start_spread(spreads=(0,), n=48, runs=2)
        assert figure.primary().ys[0] < 0.05

    def test_spread_axis(self):
        figure = ext_start_spread(spreads=(0, 4), n=48, runs=2)
        assert figure.primary().xs == [0.0, 4.0]


class TestPartialViews:
    def test_full_views_near_complete(self):
        figure = ext_partial_views(fractions=(1.0,), n=48, runs=2)
        assert figure.primary().ys[0] < 0.05

    def test_smaller_views_not_better(self):
        figure = ext_partial_views(fractions=(0.3, 1.0), n=48, runs=3)
        small, full = figure.primary().ys
        assert small >= full
