"""Unit tests for the grid-box hash functions."""

import numpy as np
import pytest

from repro.core.hashing import FairHash, StaticHash, TopologicalHash


class TestFairHash:
    def test_deterministic(self):
        h = FairHash(salt=7)
        assert h.unit_value(123) == h.unit_value(123)
        assert h.box_of(123, 64) == h.box_of(123, 64)

    def test_unit_interval(self):
        h = FairHash()
        for member in range(200):
            assert 0.0 <= h.unit_value(member) < 1.0

    def test_salt_changes_placement(self):
        a, b = FairHash(salt=0), FairHash(salt=1)
        values_a = [a.box_of(m, 64) for m in range(100)]
        values_b = [b.box_of(m, 64) for m in range(100)]
        assert values_a != values_b

    def test_box_in_range(self):
        h = FairHash()
        boxes = [h.box_of(m, 16) for m in range(1000)]
        assert min(boxes) >= 0
        assert max(boxes) < 16

    def test_roughly_uniform(self):
        """A fair hash puts about N/boxes members in each box."""
        h = FairHash(salt=3)
        counts = np.bincount(
            [h.box_of(m, 16) for m in range(16_000)], minlength=16
        )
        # Expected 1000 per box; Binomial std ~ 31, so 5 sigma ~ 155.
        assert counts.min() > 800
        assert counts.max() < 1200

    def test_arbitrary_ids(self):
        h = FairHash()
        assert 0 <= h.box_of(2**63 + 11, 64) < 64


class TestTopologicalHash:
    def _positions(self, n, seed=0):
        rng = np.random.default_rng(seed)
        coords = rng.random((n, 2)) * (1 - 1e-9)
        return {i: (float(x), float(y)) for i, (x, y) in enumerate(coords)}

    def test_rejects_out_of_range_positions(self):
        with pytest.raises(ValueError):
            TopologicalHash({0: (1.5, 0.5)}, k=4)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopologicalHash({0: (0.5, 0.5)}, k=1)

    def test_requires_power_of_k_boxes(self):
        h = TopologicalHash(self._positions(10), k=4)
        with pytest.raises(ValueError):
            h.box_of(0, 10)

    def test_box_in_range(self):
        h = TopologicalHash(self._positions(500), k=4)
        boxes = [h.box_of(m, 64) for m in range(500)]
        assert min(boxes) >= 0
        assert max(boxes) < 64

    def test_nearby_members_share_box(self):
        positions = {0: (0.1, 0.1), 1: (0.1001, 0.1001), 2: (0.9, 0.9)}
        h = TopologicalHash(positions, k=4)
        assert h.box_of(0, 16) == h.box_of(1, 16)
        assert h.box_of(0, 16) != h.box_of(2, 16)

    def test_prefix_locality(self):
        """Members of the same quadrant share the first address digit."""
        positions = {
            0: (0.1, 0.2), 1: (0.2, 0.1),   # left strip
            2: (0.9, 0.1), 3: (0.8, 0.9),   # right strip
        }
        h = TopologicalHash(positions, k=4)
        d0 = h.digits_for(0, 1)
        d1 = h.digits_for(1, 1)
        d2 = h.digits_for(2, 1)
        d3 = h.digits_for(3, 1)
        assert d0 == d1
        assert d2 == d3
        assert d0 != d2

    def test_roughly_balanced_on_uniform_positions(self):
        positions = self._positions(6400, seed=2)
        h = TopologicalHash(positions, k=4)
        counts = np.bincount(
            [h.box_of(m, 64) for m in positions], minlength=64
        )
        assert counts.min() > 40
        assert counts.max() < 180

    def test_unit_value_consistent_with_boxes(self):
        positions = self._positions(100)
        h = TopologicalHash(positions, k=2)
        for member in range(100):
            value = h.unit_value(member)
            assert 0.0 <= value < 1.0
            assert int(value * 8) == h.box_of(member, 8)


class TestStaticHash:
    def test_lookup(self):
        h = StaticHash({5: 2, 6: 0})
        assert h.box_of(5, 4) == 2
        assert h.box_of(6, 4) == 0

    def test_out_of_range_box(self):
        h = StaticHash({5: 9})
        with pytest.raises(ValueError):
            h.box_of(5, 4)

    def test_unknown_member(self):
        h = StaticHash({})
        with pytest.raises(KeyError):
            h.box_of(1, 4)

    def test_no_unit_value(self):
        with pytest.raises(NotImplementedError):
            StaticHash({1: 0}).unit_value(1)
