"""Unit tests for the parallel experiment executor."""

from __future__ import annotations

import os

import pytest

from repro.experiments.parallel import JOBS_ENV, ParallelRunner, resolve_jobs


def _square(x: int) -> int:
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_explicit_int(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("5") == 5

    def test_auto_uses_available_cores(self):
        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count() or 1
        )
        assert resolve_jobs("auto") == expected
        assert resolve_jobs(0) == expected

    def test_env_var_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(None) == 7

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(2) == 2

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "auto")
        assert resolve_jobs(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs("many")


class TestParallelRunner:
    def test_serial_map_preserves_order(self):
        runner = ParallelRunner(jobs=1)
        assert runner.map(_square, range(10)) == [x * x for x in range(10)]

    def test_parallel_map_preserves_order(self):
        runner = ParallelRunner(jobs=2)
        assert runner.map(_square, range(25)) == [x * x for x in range(25)]

    def test_single_item_stays_serial(self):
        # One item never pays pool startup; result is identical anyway.
        assert ParallelRunner(jobs=4).map(_square, [6]) == [36]

    def test_empty_input(self):
        assert ParallelRunner(jobs=4).map(_square, []) == []

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import concurrent.futures

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process spawning here")

        # The runner imports the pool lazily from concurrent.futures, so
        # patching the module attribute intercepts it.
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", BrokenPool
        )
        runner = ParallelRunner(jobs=4)
        assert runner.map(_square, range(8)) == [x * x for x in range(8)]

    def test_unpicklable_fn_raises(self):
        # A genuine user error (not pool infrastructure) must not be
        # silently retried serially.
        runner = ParallelRunner(jobs=2)
        with pytest.raises(Exception):
            runner.map(lambda x: x, range(4))
