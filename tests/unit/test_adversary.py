"""Unit tests for the adversarial fault model: proof-of-work admission,
WAN region maps, the new fault events, the tamper planner, and the
region-aware chaos network."""

import numpy as np
import pytest

from repro.chaos.adversary import (
    AdversarialSummary,
    TamperPlanner,
    _hash_box,
    _mutate_payload,
    merge_adversarial,
)
from repro.chaos.campaign import ChaosNetwork
from repro.chaos.events import (
    LossBurst,
    MessageTampering,
    RegionPartition,
    SybilJoinStorm,
)
from repro.chaos.pow import admitted_identities, pow_admitted, pow_digest
from repro.core.aggregates import AggregateState
from repro.core.messages import GossipValue, VoteReport
from repro.sim.network import Message
from repro.topology.regions import RegionMap

BOX_GROUPS = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)]


class TestProofOfWork:
    def test_zero_bits_admits_everyone(self):
        assert all(pow_admitted(i, 0) for i in range(50))

    def test_digest_is_deterministic(self):
        assert pow_digest(12, 3) == pow_digest(12, 3)
        assert pow_digest(12, 3) != pow_digest(12, 4)

    def test_admission_is_deterministic(self):
        first = admitted_identities(range(100, 140), bits=8)
        second = admitted_identities(range(100, 140), bits=8)
        assert first == second

    def test_harder_puzzles_admit_fewer(self):
        identities = range(200, 280)
        easy = admitted_identities(identities, bits=2)
        hard = admitted_identities(identities, bits=10)
        assert len(hard) < len(easy) <= len(tuple(identities))
        # Hardness is monotone per-identity too: an identity that solves
        # a hard puzzle within the budget has also solved the easy one.
        assert set(hard) <= set(easy)

    def test_budget_bounds_the_search(self):
        identities = range(300, 340)
        tight = admitted_identities(identities, bits=8, budget=1)
        roomy = admitted_identities(identities, bits=8, budget=256)
        assert set(tight) <= set(roomy)

    def test_validation(self):
        with pytest.raises(ValueError):
            pow_admitted(1, bits=-1)
        with pytest.raises(ValueError):
            pow_admitted(1, bits=4, budget=0)


class TestRegionMap:
    def test_regions_are_contiguous_box_runs(self):
        region_map = RegionMap(BOX_GROUPS, num_regions=3)
        regions = [region_map.region_of(group[0]) for group in BOX_GROUPS]
        assert regions == sorted(regions)  # contiguous runs, in order
        assert set(regions) == {0, 1, 2}

    def test_members_inherit_their_boxes_region(self):
        region_map = RegionMap(BOX_GROUPS, num_regions=2)
        for group in BOX_GROUPS:
            assert len({region_map.region_of(m) for m in group}) == 1

    def test_sizes_balance_within_one_box(self):
        region_map = RegionMap(BOX_GROUPS, num_regions=3)
        assert sum(region_map.region_sizes) == 12
        assert max(region_map.region_sizes) - min(
            region_map.region_sizes
        ) <= 2  # one box of 2 members

    def test_members_of_round_trips(self):
        region_map = RegionMap(BOX_GROUPS, num_regions=3)
        seen = []
        for region in range(3):
            members = region_map.members_of(region)
            assert all(region_map.region_of(m) == region for m in members)
            seen.extend(members)
        assert sorted(seen) == list(range(12))

    def test_validation(self):
        with pytest.raises(ValueError, match="num_regions"):
            RegionMap(BOX_GROUPS, num_regions=1)
        with pytest.raises(ValueError, match="cannot split"):
            RegionMap(BOX_GROUPS[:2], num_regions=3)
        with pytest.raises(ValueError, match="out of range"):
            RegionMap(BOX_GROUPS, num_regions=3).members_of(3)
        with pytest.raises(KeyError):
            RegionMap(BOX_GROUPS, num_regions=3).region_of(99)


class TestAdversarialEvents:
    def test_tampering_validates_rate_and_mode(self):
        MessageTampering(start=0.1, stop=0.5, rate=0.0)  # control arm ok
        with pytest.raises(ValueError, match="rate"):
            MessageTampering(start=0.1, stop=0.5, rate=-1.0)
        with pytest.raises(ValueError, match="mode"):
            MessageTampering(start=0.1, stop=0.5, rate=1.0, mode="spoof")

    def test_sybil_validates_count_and_pow(self):
        with pytest.raises(ValueError, match="count"):
            SybilJoinStorm(at=0.1, count=0)
        with pytest.raises(ValueError, match="pow_bits"):
            SybilJoinStorm(at=0.1, count=5, pow_bits=-1)
        with pytest.raises(ValueError, match="pow_budget"):
            SybilJoinStorm(at=0.1, count=5, pow_budget=0)

    def test_region_partition_validates_isolated(self):
        with pytest.raises(ValueError, match="isolated"):
            RegionPartition(start=0.1, stop=0.5, isolated=())
        with pytest.raises(ValueError, match="isolated"):
            RegionPartition(start=0.1, stop=0.5, num_regions=3,
                            isolated=(3,))
        with pytest.raises(ValueError, match="isolated"):
            RegionPartition(start=0.1, stop=0.5, num_regions=2,
                            isolated=(0, 1))

    def test_loss_burst_needs_exactly_one_rate(self):
        with pytest.raises(ValueError, match="exactly one"):
            LossBurst(start=0.1, stop=0.2)
        with pytest.raises(ValueError, match="exactly one"):
            LossBurst(start=0.1, stop=0.2, loss=0.5, delta=0.1)


def _aggregate_state(member: int) -> AggregateState:
    return AggregateState(float(member), frozenset((member,)))


def _planner(**kwargs) -> TamperPlanner:
    defaults = dict(tamper_windows=[], sybil_storms=[],
                    box_groups=BOX_GROUPS)
    defaults.update(kwargs)
    return TamperPlanner(**defaults)


class _InjectLog:
    """Minimal network stand-in recording planner injections."""

    def __init__(self):
        self.injected = []

    def inject(self, delivery_round, message):
        self.injected.append((delivery_round, message))


class TestTamperPlanner:
    def _bound(self, **kwargs):
        planner = _planner(**kwargs)
        log = _InjectLog()
        planner.bind(log, np.random.default_rng(1234))
        return planner, log

    def _snoop(self, planner, members=range(6)):
        for member in members:
            planner.observe(Message(
                src=member, dest=(member + 1) % 12,
                payload=GossipValue(1, member, _aggregate_state(member)),
                size=10, sent_round=0,
            ))

    def test_forge_injects_registered_mutants(self):
        planner, log = self._bound(
            tamper_windows=[(0, 10, 2.0, "forge")]
        )
        self._snoop(planner)
        planner.on_begin_round(3)
        assert len(log.injected) == 2
        assert planner.summary.injected_forge == 2
        for delivery_round, message in log.injected:
            assert delivery_round == 4
            assert message.src == -1
            assert planner.planted_mode(message.payload.state) == "forge"

    def test_duplicate_rekeys_to_another_member(self):
        planner, log = self._bound(
            tamper_windows=[(0, 10, 1.0, "duplicate")]
        )
        self._snoop(planner)
        planner.on_begin_round(0)
        ((_, message),) = log.injected
        payload = message.payload
        # The planted state claims the victim's membership under a
        # different genuine member key — a double count by construction.
        assert payload.key not in payload.state.members
        assert planner.planted_mode(payload.state) == "duplicate"

    def test_replay_is_not_registered(self):
        planner, log = self._bound(
            tamper_windows=[(0, 10, 1.0, "replay")]
        )
        self._snoop(planner)
        planner.on_begin_round(0)
        ((_, message),) = log.injected
        assert planner.planted_mode(message.payload.state) is None
        assert planner.summary.injected_replay == 1

    def test_empty_archive_injects_nothing(self):
        planner, log = self._bound(
            tamper_windows=[(0, 10, 3.0, "forge")]
        )
        planner.on_begin_round(0)
        assert log.injected == []
        assert planner.summary.injected_total == 0

    def test_sybil_identities_are_foreign(self):
        planner, log = self._bound(sybil_storms=[(0, 10, 0, 64)])
        self._snoop(planner)
        planner.on_begin_round(0)
        assert len(log.injected) == 10
        assert planner.summary.sybil_minted == 10
        assert planner.summary.sybil_admitted == 10
        for __, message in log.injected:
            (identity,) = message.payload.state.members
            assert identity > 11  # beyond every genuine member id

    def test_sybil_storm_defers_until_traffic_exists(self):
        planner, log = self._bound(sybil_storms=[(0, 5, 0, 64)])
        planner.on_begin_round(0)  # nothing snooped yet
        assert log.injected == []
        self._snoop(planner)
        planner.on_begin_round(1)  # fires late, exactly once
        assert len(log.injected) == 5
        planner.on_begin_round(2)
        assert len(log.injected) == 5

    def test_pow_gate_throttles_the_storm(self):
        open_planner, open_log = self._bound(
            sybil_storms=[(0, 40, 0, 64)]
        )
        gated_planner, gated_log = self._bound(
            sybil_storms=[(0, 40, 8, 64)]
        )
        for planner in (open_planner, gated_planner):
            self._snoop(planner)
            planner.on_begin_round(0)
        assert len(open_log.injected) == 40
        assert 0 < len(gated_log.injected) < 40
        assert gated_planner.summary.sybil_minted == 40
        assert gated_planner.summary.sybil_admitted == len(
            gated_log.injected
        )

    def test_same_seed_same_injections(self):
        def run():
            planner = _planner(
                tamper_windows=[(0, 10, 1.5, "forge")],
                sybil_storms=[(2, 7, 0, 64)],
            )
            log = _InjectLog()
            planner.bind(log, np.random.default_rng(99))
            self._snoop(planner)
            for round_number in range(5):
                planner.on_begin_round(round_number)
            return [
                (r, m.dest, m.payload.state.payload)
                for r, m in log.injected
            ], planner.summary

        first_log, first_summary = run()
        second_log, second_summary = run()
        assert first_log == second_log
        assert first_summary == second_summary

    def test_fractional_rate_is_bernoulli(self):
        planner, log = self._bound(
            tamper_windows=[(0, 1000, 0.5, "forge")]
        )
        self._snoop(planner)
        for round_number in range(1000):
            planner.on_begin_round(round_number)
        assert 400 < len(log.injected) < 600

    def test_mutate_payload_disturbs_every_channel(self):
        assert _mutate_payload(3.0) != 3.0
        assert _mutate_payload(7) != 7
        total, count = _mutate_payload((10.0, 4))
        assert (total, count) != (10.0, 4)

    def test_hash_box_is_stable_and_in_range(self):
        for identity in range(50, 70):
            box = _hash_box(identity, 6)
            assert 0 <= box < 6
            assert box == _hash_box(identity, 6)


class TestAdversarialSummary:
    def test_detection_rate_excludes_lost_injections(self):
        summary = AdversarialSummary(injected_forge=10, reached=4,
                                     detected=4)
        assert summary.detection_rate == 1.0
        assert AdversarialSummary().detection_rate == 0.0

    def test_merge(self):
        merged = merge_adversarial([
            AdversarialSummary(injected_forge=2, reached=1, detected=1),
            None,
            AdversarialSummary(sybil_minted=5, sybil_admitted=3,
                               reached=3, detected=2),
        ])
        assert merged.injected_total == 5
        assert merged.reached == 4
        assert merged.detected == 3
        assert merge_adversarial([None, None]) is None

    def test_to_record_is_json_safe(self):
        import json

        record = AdversarialSummary(reached=3, detected=2).to_record()
        assert json.loads(json.dumps(record)) == record
        assert record["detection_rate"] == round(2 / 3, 6)


class TestRegionAwareNetwork:
    def _network(self):
        network = ChaosNetwork(base_loss=0.1)
        region_of = {m: RegionMap(BOX_GROUPS, 3).region_of(m)
                     for m in range(12)}
        network.region_state = (
            region_of, frozenset((0,)), 0.95, 0.7, 0.35
        )
        return network

    def _message(self, src, dest):
        return Message(src=src, dest=dest, payload=None, size=1,
                       sent_round=0)

    def test_asymmetric_region_loss(self):
        network = self._network()
        isolated = 0      # region 0
        healthy_a = 4     # region 1
        healthy_b = 8     # region 2
        assert network.loss_probability(
            self._message(isolated, healthy_a)
        ) == 0.95  # outbound from the isolated region
        assert network.loss_probability(
            self._message(healthy_a, isolated)
        ) == 0.7   # inbound to the isolated region
        assert network.loss_probability(
            self._message(healthy_a, healthy_b)
        ) == 0.35  # healthy WAN floor
        assert network.loss_probability(
            self._message(healthy_a, 5)
        ) == 0.1   # intra-region traffic sees only the base rate

    def test_region_floor_never_lowers_current_loss(self):
        network = self._network()
        network.current_loss = 0.99
        assert network.loss_probability(self._message(4, 8)) == 0.99

    def test_region_state_disables_block_planning(self):
        network = self._network()
        src = np.arange(4, dtype=np.int64)
        dest = np.arange(4, dtype=np.int64)[::-1].copy()
        assert network.block_loss_probabilities(src, dest) is None
        network.region_state = None
        assert network.block_loss_probabilities(src, dest) is not None

    def test_planner_disables_block_planning(self):
        network = ChaosNetwork(base_loss=0.1)
        network.planner = _planner()
        src = np.arange(4, dtype=np.int64)
        assert network.block_loss_probabilities(src, src) is None
