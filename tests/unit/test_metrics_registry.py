"""Registry semantics of repro.obs.metrics.

The live metrics layer's whole value rests on two properties pinned
here: one name means one schema for a registry's lifetime (kind, label
set and bucket boundaries are checked on every lookup), and snapshots
are canonical — sorted family names, sorted label tuples, sorted JSON
keys — so two registries fed the same events serialize byte-for-byte
identically regardless of creation or feed order.
"""

import json

import pytest

from repro.core.observe import PhaseEvent
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    MetricsPhaseSink,
    MetricsRegistry,
    TeePhaseSink,
    feed_run_record,
    observe_phase_event,
    observe_round,
)
from repro.sim.metrics import RoundSample


def _sample(round=0, messages=10):
    return RoundSample(
        round=round, messages_sent=messages, bytes_sent=messages * 8,
        messages_dropped=0, live_members=16, active_members=16,
        max_sends_by_member=3,
    )


def _event(kind="phase_enter", phase=1):
    return PhaseEvent(kind=kind, member=0, round=0, phase=phase)


class TestCounter:
    def test_counts_up(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_is_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter(
            "c_total", labelnames=("kind",)
        )
        counter.labels("a").inc(2)
        counter.labels("b").inc(3)
        assert counter.labels("a").value == 2
        assert counter.labels("b").value == 3
        assert counter.value == 5  # family total sums the series

    def test_label_arity_is_enforced(self):
        counter = MetricsRegistry().counter(
            "c_total", labelnames=("kind",)
        )
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels("a", "b")

    def test_label_values_are_stringified(self):
        counter = MetricsRegistry().counter(
            "c_total", labelnames=("node",)
        )
        counter.labels(7).inc()
        assert counter.labels("7").value == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_bucket_assignment_is_upper_bound_inclusive(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.0, 2.0, 3.0, 100.0):
            histogram.observe(value)
        child = histogram.labels()
        # le=1 gets {0.5, 1.0}; le=2 gets {2.0}; le=4 gets {3.0};
        # +Inf overflow gets {100.0}.
        assert child.counts == [2, 1, 1, 1]
        assert child.count == 5
        assert child.sum == pytest.approx(106.5)

    def test_bucket_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("h1", buckets=())
        with pytest.raises(ValueError, match="increase strictly"):
            registry.histogram("h2", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            registry.histogram("h3", buckets=(1.0, float("inf")))


class TestOneNameOneSchema:
    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_labelnames_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", labelnames=("kind",))
        with pytest.raises(ValueError, match="registered with labels"):
            registry.counter("m", labelnames=("node",))

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="registered with buckets"):
            registry.histogram("h", buckets=(1.0, 4.0))

    def test_same_schema_returns_the_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("m", labelnames=("kind",))
        second = registry.counter("m", labelnames=("kind",))
        assert first is second
        # Default buckets on re-lookup never conflict.
        h = registry.histogram("h")
        assert registry.histogram("h", buckets=DEFAULT_BUCKETS) is h


class TestSnapshot:
    def test_schema_and_shape(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "bees", labelnames=("kind",)) \
            .labels("worker").inc(3)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        family = snapshot["metrics"]["b_total"]
        assert family["type"] == "counter"
        assert family["help"] == "bees"
        assert family["labels"] == ["kind"]
        assert family["samples"] == [
            {"labels": ["worker"], "value": 3}
        ]

    def test_histogram_snapshot_carries_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        family = registry.snapshot()["metrics"]["h"]
        assert family["buckets"] == [1.0, 2.0]
        assert family["samples"][0]["counts"] == [0, 1, 0]
        assert family["samples"][0]["count"] == 1

    def test_nan_values_encode_as_null(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("nan"))
        text = registry.snapshot_json()
        assert json.loads(text)["metrics"]["g"]["samples"][0][
            "value"
        ] is None

    def test_feed_order_does_not_change_the_bytes(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for registry, order in ((forward, (0, 1, 2)),
                                (backward, (2, 1, 0))):
            for node in order:
                registry.counter(
                    "tx_total", labelnames=("node",)
                ).labels(node).inc(node + 1)
                registry.gauge("up").set(1)
        assert forward.snapshot_json() == backward.snapshot_json()

    def test_families_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.counter("a_total")
        assert registry.families() == ["a_total", "z_total"]


class TestPrometheusRendering:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "bees", labelnames=("kind",)) \
            .labels("worker").inc(3)
        text = registry.render_prometheus()
        assert "# HELP b_total bees\n" in text
        assert "# TYPE b_total counter\n" in text
        assert 'b_total{kind="worker"} 3\n' in text

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        lines = registry.render_prometheus().splitlines()
        assert 'h_bucket{le="1.0"} 1' in lines
        assert 'h_bucket{le="2.0"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_sum 11.0" in lines
        assert "h_count 3" in lines

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("path",)) \
            .labels('a"b\nc').inc()
        text = registry.render_prometheus()
        assert 'c_total{path="a\\"b\\nc"} 1' in text

    def test_every_sample_line_parses_numeric(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(3)
        for line in registry.render_prometheus().splitlines():
            if line.startswith("#") or not line:
                continue
            float(line.rpartition(" ")[2])


class TestHookPoints:
    def test_observe_phase_event_counts_by_kind(self):
        registry = MetricsRegistry()
        observe_phase_event(registry, _event("phase_enter"))
        observe_phase_event(registry, _event("phase_enter"))
        observe_phase_event(registry, _event("finalize"))
        counter = registry.counter(
            "repro_phase_events_total", labelnames=("kind",)
        )
        assert counter.labels("phase_enter").value == 2
        assert counter.labels("finalize").value == 1

    def test_observe_round_sets_gauges_and_histogram(self):
        registry = MetricsRegistry()
        observe_round(registry, _sample(round=7, messages=40))
        assert registry.gauge("repro_sim_round").value == 7
        assert registry.gauge("repro_sim_live_members").value == 16
        messages = registry.snapshot()["metrics"][
            "repro_sim_round_messages"
        ]
        assert messages["samples"][0]["count"] == 1

    def test_metrics_phase_sink_feeds_the_registry(self):
        registry = MetricsRegistry()
        MetricsPhaseSink(registry).emit(_event("finalize"))
        assert registry.counter(
            "repro_phase_events_total", labelnames=("kind",)
        ).labels("finalize").value == 1

    def test_tee_fans_out_and_skips_none(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        tee = TeePhaseSink(
            MetricsPhaseSink(left), None, MetricsPhaseSink(right)
        )
        tee.emit(_event())
        for registry in (left, right):
            assert registry.counter(
                "repro_phase_events_total", labelnames=("kind",)
            ).labels("phase_enter").value == 1

    def test_feed_run_record_accumulates_counters(self):
        registry = MetricsRegistry()
        record = {
            "rounds": 10, "messages_sent": 100, "bytes_sent": 800,
            "completeness": 1.0,
        }
        feed_run_record(registry, record)
        feed_run_record(registry, record)
        assert registry.counter("repro_runs_total").value == 2
        assert registry.counter(
            "repro_sim_messages_sent_total"
        ).value == 200
        # Gauges hold the last fed record's value, not a sum.
        assert registry.gauge("repro_run_completeness").value == 1.0
