"""Tests for the runtime aggregation sanitizer (:mod:`repro.sanitize`).

The headline case plants a deliberate double count inside a live
protocol run and asserts the sanitizer rejects it with a structured
report naming the offending member, round and phase.  The rest covers
each invariant in isolation (count channel, mass conservation, foreign
members, phase clock), the exception-compatibility contract with
:class:`~repro.core.aggregates.DoubleCountError`, and that enabling the
sanitizer never changes results.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import sanitize
from repro.core import aggregates
from repro.core.aggregates import (
    AggregateState,
    AverageAggregate,
    DoubleCountError,
    SumAggregate,
)
from repro.core.gridbox import GridAssignment, GridBoxHierarchy
from repro.core.hashing import StaticHash
from repro.core.hierarchical_gossip import (
    GossipParams,
    build_hierarchical_gossip_group,
)
from repro.experiments.params import RunConfig
from repro.experiments.runner import run_once
from repro.sim.engine import SimulationEngine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

SRC = Path(__file__).resolve().parents[2] / "src"


class _StubProcess:
    """Minimal protocol-process stand-in for compose/phase checks."""

    def __init__(self, node_id=0, function=None):
        self.node_id = node_id
        self.function = function if function is not None else SumAggregate()


@pytest.fixture
def clean_sanitizer():
    """Sanitizer on, with no leftover run state, restored afterwards."""
    sanitize.enable()
    sanitize.end_run()
    yield sanitize
    sanitize.end_run()
    sanitize.enable()  # the suite default (tests/conftest.py) is on


class TestEnableDisable:
    def test_toggle_binds_and_unbinds_the_merge_hook(self, clean_sanitizer):
        sanitize.disable()
        assert not sanitize.enabled()
        assert aggregates._SANITIZE_HOOK is None
        sanitize.enable()
        assert sanitize.enabled()
        assert aggregates._SANITIZE_HOOK is sanitize._on_merge

    def test_environment_variable_enables_at_import(self):
        code = "import repro.sanitize as s; print(s.enabled())"
        for value, expected in (("1", "True"), ("0", "False")):
            completed = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True,
                env={
                    "PYTHONPATH": str(SRC),
                    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                    "REPRO_SANITIZE": value,
                },
            )
            assert completed.returncode == 0, completed.stderr
            assert completed.stdout.strip() == expected


class TestMergeChecks:
    def test_overlapping_merge_raises_double_count_violation(
        self, clean_sanitizer
    ):
        function = SumAggregate()
        a = function.lift(5, 1.0)
        b = function.merge(function.lift(5, 1.0), function.lift(6, 2.0))
        with pytest.raises(sanitize.DoubleCountViolation) as caught:
            function.merge(a, b)
        violation = caught.value.violation
        assert violation.kind == "double-count"
        assert "5" in violation.detail

    def test_violation_is_also_the_protocols_double_count_error(
        self, clean_sanitizer
    ):
        function = SumAggregate()
        with pytest.raises(DoubleCountError):
            function.merge(function.lift(1, 1.0), function.lift(1, 1.0))

    def test_compose_context_attributes_member_round_phase(
        self, clean_sanitizer
    ):
        function = SumAggregate()
        with pytest.raises(sanitize.DoubleCountViolation) as caught:
            with sanitize.composing(member=7, round_number=3, phase=2):
                function.merge(function.lift(1, 1.0), function.lift(1, 1.0))
        violation = caught.value.violation
        assert (violation.member, violation.round, violation.phase) == (
            7, 3, 2,
        )
        report = violation.report()
        assert "member 7" in report and "phase 2" in report

    def test_count_channel_drift_is_rejected(self, clean_sanitizer):
        function = AverageAggregate()
        # Payload claims two votes, the mask covers one: a smuggled
        # double count that disjointness alone cannot see.
        drifted = AggregateState(payload=(5.0, 2), members=frozenset({1}))
        with pytest.raises(sanitize.SanitizerError) as caught:
            function.merge(drifted, function.lift(2, 1.0))
        assert caught.value.violation.kind == "count-channel"

    def test_disjoint_merges_pass(self, clean_sanitizer):
        function = AverageAggregate()
        merged = function.merge(function.lift(1, 1.0), function.lift(2, 3.0))
        assert merged.covers() == 2


class TestComposeChecks:
    VOTES = {1: 1.0, 2: 2.0, 3: 4.0}

    def test_mass_conservation_catches_tampered_payload(
        self, clean_sanitizer
    ):
        function = SumAggregate()
        sanitize.begin_run(self.VOTES, function)
        tampered = AggregateState(
            payload=99.0, members=frozenset(self.VOTES)
        )
        with pytest.raises(sanitize.SanitizerError) as caught:
            sanitize.check_compose(
                _StubProcess(node_id=2, function=function), 4, 2, tampered
            )
        violation = caught.value.violation
        assert violation.kind == "mass-conservation"
        assert (violation.member, violation.round, violation.phase) == (
            2, 4, 2,
        )

    def test_exact_mass_passes(self, clean_sanitizer):
        function = SumAggregate()
        sanitize.begin_run(self.VOTES, function)
        good = AggregateState(payload=7.0, members=frozenset(self.VOTES))
        sanitize.check_compose(_StubProcess(function=function), 0, 1, good)

    def test_fold_order_float_drift_is_tolerated(self, clean_sanitizer):
        function = SumAggregate()
        sanitize.begin_run(self.VOTES, function)
        drifted = AggregateState(
            payload=7.0 * (1.0 + 1e-9), members=frozenset(self.VOTES)
        )
        sanitize.check_compose(_StubProcess(function=function), 0, 1, drifted)

    def test_foreign_member_is_rejected(self, clean_sanitizer):
        function = SumAggregate()
        sanitize.begin_run(self.VOTES, function)
        foreign = AggregateState(
            payload=1.0, members=frozenset({1, 999})
        )
        with pytest.raises(sanitize.SanitizerError) as caught:
            sanitize.check_compose(_StubProcess(function=function), 0, 1,
                                   foreign)
        violation = caught.value.violation
        assert violation.kind == "foreign-member"
        assert "999" in violation.detail


class TestPhaseClock:
    def test_monotone_stepping_passes(self, clean_sanitizer):
        process = _StubProcess(node_id=4)
        sanitize.check_phase_bump(process, 0, 1, 2)
        sanitize.check_phase_bump(process, 3, 2, 3)
        assert process._sanitize_phase_clock == 3

    def test_phase_skip_is_rejected(self, clean_sanitizer):
        process = _StubProcess(node_id=4)
        with pytest.raises(sanitize.SanitizerError) as caught:
            sanitize.check_phase_bump(process, 0, 1, 3)
        assert caught.value.violation.kind == "phase-clock"
        assert caught.value.violation.member == 4

    def test_regression_is_rejected(self, clean_sanitizer):
        process = _StubProcess(node_id=4)
        sanitize.check_phase_bump(process, 0, 1, 2)
        with pytest.raises(sanitize.SanitizerError):
            sanitize.check_phase_bump(process, 1, 1, 2)


class TestPlantedDoubleCountInProtocol:
    """The acceptance case: a planted double count inside a live run."""

    def _figure1_world(self):
        function = SumAggregate()
        votes = {m: float(m) for m in range(1, 9)}
        boxes = {7: 0, 3: 0, 8: 0, 6: 1, 5: 1, 2: 2, 4: 2, 1: 3}
        hierarchy = GridBoxHierarchy(8, 2)
        assignment = GridAssignment(hierarchy, votes, StaticHash(boxes))
        return votes, function, assignment

    def test_planted_double_count_names_member_and_phase(
        self, clean_sanitizer
    ):
        votes, function, assignment = self._figure1_world()
        processes = build_hierarchical_gossip_group(
            votes, function, assignment, GossipParams()
        )
        target = next(p for p in processes if p.node_id == 7)
        original_on_start = target.on_start

        def planted_on_start(ctx):
            # A buggy protocol implementation re-admitting its own vote
            # under a second key: classic double count.
            original_on_start(ctx)
            target.known["planted"] = function.lift(7, votes[7])

        target.on_start = planted_on_start
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            rngs=RngRegistry(seed=0),
            max_rounds=200,
        )
        engine.add_processes(processes)
        with pytest.raises(sanitize.DoubleCountViolation) as caught:
            engine.run()
        violation = caught.value.violation
        assert violation.kind == "double-count"
        # The duplicate is detected at the first composing member it
        # reaches — the planter itself or a box-mate it gossiped to.
        assert violation.member in {3, 7, 8}
        assert violation.phase == 1
        assert violation.round is not None
        assert "7" in violation.detail  # the double-counted member
        assert f"member {violation.member}" in violation.report()
        assert "phase 1" in violation.report()

    def test_untampered_run_passes_under_sanitizer(self, clean_sanitizer):
        votes, function, assignment = self._figure1_world()
        sanitize.begin_run(votes, function)
        processes = build_hierarchical_gossip_group(
            votes, function, assignment, GossipParams()
        )
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            rngs=RngRegistry(seed=0),
            max_rounds=200,
        )
        engine.add_processes(processes)
        engine.run()
        assert all(p.result is not None for p in processes)


class TestRunnerIntegration:
    CONFIG = RunConfig(n=24, k=2, seed=11)

    def test_run_once_installs_and_clears_ground_truth(
        self, clean_sanitizer
    ):
        result = run_once(self.CONFIG)
        assert result.report.mean_completeness >= 0.0
        assert sanitize._GROUND_TRUTH is None  # end_run ran

    def test_results_identical_with_and_without_sanitizer(
        self, clean_sanitizer
    ):
        sanitize.disable()
        plain = run_once(self.CONFIG)
        sanitize.enable()
        checked = run_once(self.CONFIG)
        assert plain.true_value == checked.true_value
        assert plain.rounds == checked.rounds
        assert plain.messages_sent == checked.messages_sent
        assert plain.bytes_sent == checked.bytes_sent
        assert plain.report.per_member == checked.report.per_member
        assert (
            plain.report.mean_completeness
            == checked.report.mean_completeness
        )
