"""Per-rule tests for the ``repro lint`` static checks (REP001–REP006).

Each rule is exercised twice: against the committed fixture corpus in
``tests/lint_corpus`` (violation counts pinned, clean twins must stay
clean) and against small inline sources probing the rule's edges —
allowlists, scope restrictions, and the order-free/scalar escape
hatches that keep the false-positive rate near zero.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import LintEngine

CORPUS = Path(__file__).resolve().parents[1] / "lint_corpus"

#: (corpus file, expected rule code, expected violation count).
CORPUS_EXPECTATIONS = [
    ("rep001_bad.py", "REP001", 4),
    ("sim/rep002_bad.py", "REP002", 5),
    ("rep003_bad.py", "REP003", 3),
    ("rep004_bad.py", "REP004", 3),
    ("rep005_bad.py", "REP005", 5),
    ("sim/rep006_bad.py", "REP006", 4),
]

CLEAN_FILES = [
    "rep001_clean.py",
    "sim/rep002_clean.py",
    "rep003_clean.py",
    "rep004_clean.py",
    "rep005_clean.py",
    "sim/rep006_clean.py",
    "suppressed.py",
]


def lint(source: str, path: str = "src/repro/sim/module.py"):
    """Codes of the violations in one dedented in-memory module."""
    result = LintEngine().check_source(textwrap.dedent(source), path)
    return [violation.code for violation in result.violations]


def lint_file(relative: str):
    path = CORPUS / relative
    return LintEngine().check_source(
        path.read_text(encoding="utf-8"), path.as_posix()
    )


class TestCorpus:
    @pytest.mark.parametrize(
        "relative, code, count", CORPUS_EXPECTATIONS,
        ids=[code for __, code, __ in CORPUS_EXPECTATIONS],
    )
    def test_bad_fixture_triggers_exactly_its_rule(
        self, relative, code, count
    ):
        result = lint_file(relative)
        assert [v.code for v in result.violations] == [code] * count

    @pytest.mark.parametrize("relative", CLEAN_FILES)
    def test_clean_fixture_is_clean(self, relative):
        assert lint_file(relative).violations == []

    def test_pragma_fixture_counts_as_suppressed(self):
        result = lint_file("suppressed.py")
        assert result.suppressed == 1


class TestRawRngRule:
    def test_flags_numpy_and_stdlib_constructions(self):
        assert lint(
            """
            import random
            import numpy as np

            def f(seed):
                a = np.random.default_rng(seed)
                b = random.random()
                return a, b
            """
        ) == ["REP001", "REP001"]

    def test_resolves_from_import_aliases(self):
        assert lint(
            """
            from numpy.random import default_rng as mk

            def f(seed):
                return mk(seed)
            """
        ) == ["REP001"]

    def test_allowed_inside_the_rng_module(self):
        source = """
            import numpy as np

            def stream(seed):
                return np.random.default_rng(seed)
            """
        assert lint(source, path="src/repro/sim/rng.py") == []
        assert lint(source, path="src/repro/sim/engine.py") == ["REP001"]

    def test_registry_usage_is_clean(self):
        assert lint(
            """
            from repro.sim.rng import RngRegistry

            def f(seed):
                return RngRegistry(seed).stream("a", "b").random()
            """
        ) == []


class TestWallClockRule:
    def test_flags_wall_clock_in_restricted_dirs(self):
        source = """
            import time

            def now():
                return time.time()
            """
        for directory in ("sim", "core", "chaos", "baselines"):
            path = f"src/repro/{directory}/module.py"
            assert lint(source, path=path) == ["REP002"], directory

    def test_ignored_outside_restricted_dirs(self):
        source = """
            import time

            def now():
                return time.time()
            """
        assert lint(source, path="src/repro/experiments/wallclock.py") == []
        assert lint(source, path="tools/bench.py") == []

    def test_flags_environment_access(self):
        assert lint(
            """
            import os

            def mode():
                return os.environ.get("MODE")
            """
        ) == ["REP002"]

    def test_flags_id_ordering(self):
        assert lint(
            """
            def order(xs):
                return sorted(xs, key=id)
            """
        ) == ["REP002"]


class TestUnorderedIterationRule:
    def test_flags_order_sensitive_contexts(self):
        assert lint(
            """
            def f(known):
                pending = set(known)
                listed = list(pending)
                comp = [x for x in pending]
                for x in known.keys() & pending:
                    listed.append(x)
                return listed, comp
            """
        ) == ["REP003", "REP003", "REP003"]

    def test_order_free_consumers_are_clean(self):
        assert lint(
            """
            import math

            def f(known):
                pending = set(known)
                a = sorted(pending)
                b = max(pending)
                c = sum(1 for x in pending)
                d = math.fsum(known[x] for x in pending)
                e = {x for x in pending}
                return a, b, c, d, e
            """
        ) == []

    def test_plain_list_iteration_is_clean(self):
        assert lint(
            """
            def f(items):
                return [x for x in items]
            """
        ) == []


class TestTruthinessOnOptionalRule:
    def test_flags_or_fallback_for_container_annotation(self):
        assert lint(
            """
            def f(bus: "Bus | None" = None):
                bus = bus or object()
                return bus
            """
        ) == ["REP004"]

    def test_flags_truthiness_branch_for_container_annotation(self):
        assert lint(
            """
            def f(bus: "Bus | None" = None):
                if not bus:
                    return None
                return bus
            """
        ) == ["REP004"]

    def test_scalar_annotations_may_use_or(self):
        assert lint(
            """
            def f(name: "str | None" = None, scale: float | None = None):
                label = name or "default"
                factor = scale or 1.0
                return label, factor
            """
        ) == []

    def test_unannotated_flags_only_constructor_fallback(self):
        assert lint(
            """
            def f(config=None, flag=None):
                config = config or dict()
                enabled = flag or True
                return config, enabled
            """
        ) == ["REP004"]

    def test_is_none_form_is_clean(self):
        assert lint(
            """
            def f(bus: "Bus | None" = None):
                bus = bus if bus is not None else object()
                return bus
            """
        ) == []


class TestMutableSharedStateRule:
    def test_flags_mutable_defaults_and_class_literals(self):
        assert lint(
            """
            class Engine:
                cache = {}

            def record(x, log=[]):
                log.append(x)
                return log
            """
        ) == ["REP005", "REP005"]

    def test_slots_and_instance_state_are_clean(self):
        assert lint(
            """
            class Engine:
                __slots__ = ("listeners",)

                def __init__(self):
                    self.listeners = []

            def record(x, log=None):
                log = [] if log is None else log
                log.append(x)
                return log
            """
        ) == []


class TestFloatKeySortRule:
    def test_flags_provably_float_keys(self):
        assert lint(
            """
            import math

            def order(xs, w):
                xs.sort(key=lambda x: w[x] / 3)
                a = sorted(xs, key=lambda x: 0.5 * w[x])
                b = sorted(xs, key=lambda x: math.log(w[x]))
                c = sorted(xs, key=lambda x: -float(w[x]))
                return a, b, c
            """
        ) == ["REP006"] * 4

    def test_tuple_key_is_clean(self):
        assert lint(
            """
            def order(xs, w):
                return sorted(xs, key=lambda x: (w[x] / 3, x))
            """
        ) == []

    def test_unprovable_keys_are_clean(self):
        # Names/attributes/subscripts may be floats, but the rule only
        # fires on syntactically certain floats (zero false positives).
        assert lint(
            """
            def order(xs, w):
                a = sorted(xs, key=lambda x: w[x])
                b = sorted(xs, key=lambda x: x.score)
                c = sorted(xs, key=lambda x: abs(x))
                return a, b, c
            """
        ) == []

    def test_scope_is_sim_core_chaos_only(self):
        source = """
            def order(xs, w):
                return sorted(xs, key=lambda x: w[x] / 3)
            """
        for directory in ("sim", "core", "chaos"):
            path = f"src/repro/{directory}/module.py"
            assert lint(source, path=path) == ["REP006"], directory
        assert lint(source, path="src/repro/experiments/module.py") == []
        assert lint(source, path="src/repro/baselines/module.py") == []
