"""Unit tests for the round-based simulation engine."""

import pytest

from repro.sim.engine import Process, SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.network import LossyNetwork, Network
from repro.sim.rng import RngRegistry


class Echo(Process):
    """Sends one message to a target on round 0; records receipts."""

    def __init__(self, node_id, target=None, rounds=1):
        super().__init__(node_id)
        self.target = target
        self.rounds = rounds
        self.received = []
        self.round_log = []
        self.started = False
        self.crashed_at = None
        self.recovered_at = None

    def on_start(self, ctx):
        self.started = True

    def on_round(self, ctx):
        self.round_log.append(ctx.round)
        if self.target is not None and ctx.round == 0:
            ctx.send(self.target, f"hi from {self.node_id}")
        if len(self.round_log) >= self.rounds:
            ctx.terminate()

    def on_message(self, ctx, message):
        self.received.append((ctx.round, message.src, message.payload))

    def on_crash(self, ctx):
        self.crashed_at = ctx.round

    def on_recover(self, ctx):
        self.recovered_at = ctx.round


def _engine(network=None, failures=None, max_rounds=100):
    return SimulationEngine(
        network=network or Network(),
        failure_model=failures,
        rngs=RngRegistry(0),
        max_rounds=max_rounds,
    )


class TestLifecycle:
    def test_on_start_called_once(self):
        engine = _engine()
        p = Echo(0)
        engine.add_process(p)
        engine.run()
        assert p.started

    def test_duplicate_ids_rejected(self):
        engine = _engine()
        engine.add_process(Echo(0))
        with pytest.raises(ValueError):
            engine.add_process(Echo(0))

    def test_run_stops_when_all_terminate(self):
        engine = _engine()
        engine.add_processes([Echo(0, rounds=3), Echo(1, rounds=5)])
        stats = engine.run()
        assert stats.rounds_executed == 5

    def test_max_rounds_bounds_run(self):
        class Forever(Process):
            pass

        engine = _engine(max_rounds=7)
        engine.add_process(Forever(0))
        stats = engine.run()
        assert stats.rounds_executed == 7

    def test_until_predicate_stops_early(self):
        engine = _engine()
        engine.add_process(Echo(0, rounds=50))
        engine.run(until=lambda: engine.round >= 10)
        assert engine.round == 10


class TestMessaging:
    def test_message_delivered_next_round(self):
        engine = _engine()
        a, b = Echo(0, target=1, rounds=5), Echo(1, rounds=5)
        engine.add_processes([a, b])
        engine.run()
        assert b.received == [(1, 0, "hi from 0")]

    def test_terminated_process_still_receives(self):
        engine = _engine()
        a = Echo(0, target=1, rounds=5)
        b = Echo(1, rounds=1)  # terminates in round 0
        engine.add_processes([a, b])
        engine.run()
        assert b.received  # late delivery still reaches it

    def test_message_to_unknown_destination_vanishes(self):
        engine = _engine()
        engine.add_process(Echo(0, target=99, rounds=2))
        stats = engine.run()
        assert stats.messages_delivered == 0

    def test_messages_to_crashed_member_vanish(self):
        engine = _engine(failures=ScheduledFailures(crash_at={0: [1]}))
        a, b = Echo(0, target=1, rounds=3), Echo(1, rounds=3)
        engine.add_processes([a, b])
        engine.run()
        assert b.received == []

    def test_send_outside_callback_asserts(self):
        engine = _engine()
        engine.add_process(Echo(0))
        with pytest.raises(AssertionError):
            engine._ctx.send(0, "nope")


class TestFailures:
    def test_crash_stops_rounds(self):
        engine = _engine(failures=ScheduledFailures(crash_at={2: [0]}))
        p = Echo(0, rounds=100)
        engine.add_process(p)
        engine.run()
        assert p.crashed_at == 2
        assert max(p.round_log) == 1  # no round step at/after the crash

    def test_recovery_resumes_rounds(self):
        engine = _engine(
            failures=ScheduledFailures(crash_at={1: [0]}, recover_at={3: [0]})
        )
        p = Echo(0, rounds=4)
        engine.add_process(p)
        engine.run()
        assert p.recovered_at == 3
        assert 3 in p.round_log

    def test_crash_counted_once(self):
        engine = _engine(
            failures=ScheduledFailures(crash_at={1: [0], 2: [0]})
        )
        engine.add_process(Echo(0, rounds=100))
        stats = engine.run()
        assert stats.crashes == 1


class TestScheduling:
    def test_scheduled_callback_runs_at_round(self):
        engine = _engine()
        fired = []
        engine.add_process(Echo(0, rounds=6))
        engine.schedule(3, lambda: fired.append(engine.round))
        engine.run()
        assert fired == [3]

    def test_cannot_schedule_in_past(self):
        engine = _engine()
        engine.round = 5
        with pytest.raises(ValueError):
            engine.schedule(4, lambda: None)


class TestLivenessCounters:
    """The O(1) alive/active/terminated counters vs. an O(N) recount.

    The metrics snapshot path reads these every round at N >= 8192, so
    they must track every transition source: add, crash, recover and
    terminate.
    """

    @staticmethod
    def _recount(engine):
        alive = sum(1 for p in engine.processes.values() if p.alive)
        terminated = sum(
            1 for p in engine.processes.values() if p.terminated
        )
        active = sum(
            1 for p in engine.processes.values()
            if p.alive and not p.terminated
        )
        return alive, active, terminated

    def _check(self, engine):
        assert (
            engine.live_count, engine.active_count, engine.terminated_count
        ) == self._recount(engine)

    def test_counters_after_add(self):
        engine = _engine()
        engine.add_processes([Echo(i, rounds=3) for i in range(5)])
        self._check(engine)
        assert engine.live_count == 5
        assert engine.terminated_count == 0

    def test_counters_track_every_round(self):
        engine = _engine(
            failures=ScheduledFailures(
                crash_at={1: [0, 1], 3: [2]}, recover_at={4: [1]}
            )
        )
        engine.add_processes([Echo(i, rounds=i + 2) for i in range(6)])
        engine.run(until=lambda: self._check(engine))
        self._check(engine)
        assert engine.live_count == 6 - 2  # 0 and 2 stay crashed

    def test_all_terminated_stops_via_counter(self):
        engine = _engine()
        engine.add_processes([Echo(i, rounds=2) for i in range(4)])
        engine.run()
        self._check(engine)
        assert engine.terminated_count == 4
        assert engine.active_count == 0


class TestDeterminism:
    def _run(self, seed):
        engine = SimulationEngine(
            network=LossyNetwork(ucastl=0.5),
            rngs=RngRegistry(seed),
            max_rounds=50,
        )
        procs = [Echo(i, target=(i + 1) % 10, rounds=10) for i in range(10)]
        engine.add_processes(procs)
        engine.run()
        return [tuple(p.received) for p in procs]

    def test_same_seed_identical_trace(self):
        assert self._run(5) == self._run(5)

    def test_different_seed_differs(self):
        assert self._run(5) != self._run(6)
