"""Unit tests for the periodic MonitoringSession extension."""

import pytest

from repro import sanitize
from repro.monitoring import EpochResult, MonitoringSession, Trigger


def constant_votes(value=5.0):
    def sample(epoch, members, rng):
        return {m: value for m in members}
    return sample


def drifting_votes(epoch, members, rng):
    return {m: 10.0 + epoch for m in members}


class TestTrigger:
    def test_above(self):
        trigger = Trigger("hot", threshold=30.0)
        assert trigger.fires(31.0)
        assert not trigger.fires(30.0)

    def test_below(self):
        trigger = Trigger("cold", threshold=0.0, direction="below")
        assert trigger.fires(-1.0)
        assert not trigger.fires(0.5)

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            Trigger("bad", 0.0, direction="sideways")


class TestMonitoringSession:
    def test_epochs_track_truth(self):
        session = MonitoringSession(
            group_size=64, sample_votes=drifting_votes, seed=1
        )
        results = session.run_epochs(3)
        assert [r.true_value for r in results] == [10.0, 11.0, 12.0]
        for result in results:
            assert result.mean_completeness == 1.0
            assert result.estimate_error == pytest.approx(0.0, abs=1e-9)

    def test_crashes_accumulate_across_epochs(self):
        session = MonitoringSession(
            group_size=100, sample_votes=constant_votes(), pf=0.01, seed=2
        )
        results = session.run_epochs(4)
        sizes = [r.group_size for r in results]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0]
        assert session.alive_count == results[-1].survivors

    def test_triggers_counted(self):
        session = MonitoringSession(
            group_size=32, sample_votes=drifting_votes, seed=3
        )
        session.add_trigger(Trigger("hot", threshold=10.5))
        results = session.run_epochs(2)
        # epoch 0: estimate 10.0 (below), epoch 1: 11.0 (above at all)
        assert results[0].trigger_counts["hot"] == 0
        assert results[1].trigger_counts["hot"] == results[1].survivors

    def test_vote_map_must_cover_members(self):
        session = MonitoringSession(
            group_size=8,
            sample_votes=lambda e, members, rng: {members[0]: 1.0},
            seed=0,
        )
        with pytest.raises(ValueError):
            session.run_epoch()

    def test_dead_group_stops(self):
        session = MonitoringSession(
            group_size=4, sample_votes=constant_votes(), seed=0
        )
        session.members = []
        assert session.run_epoch() is None
        assert session.run_epochs(3) == []

    def test_deterministic_given_seed(self):
        a = MonitoringSession(64, constant_votes(), ucastl=0.3, seed=9)
        b = MonitoringSession(64, constant_votes(), ucastl=0.3, seed=9)
        ra = a.run_epochs(2)
        rb = b.run_epochs(2)
        assert [r.mean_completeness for r in ra] == [
            r.mean_completeness for r in rb
        ]
        assert [r.messages for r in ra] == [r.messages for r in rb]

    def test_validation(self):
        with pytest.raises(ValueError):
            MonitoringSession(0, constant_votes())


class TestSanitizerWiring:
    """Epochs must install sanitizer ground truth (the ROADMAP gap).

    Without ``begin_run`` the mass-conservation check silently degrades
    to mask-only mode for every monitoring epoch — a planted payload
    corruption would pass.  These tests pin both halves: the epoch
    installs exactly its vote map, and a corrupted payload is caught.
    """

    @pytest.fixture(autouse=True)
    def _sanitizer_on(self):
        was_active = sanitize.ACTIVE
        if not was_active:
            sanitize.enable()
        yield
        if not was_active:
            sanitize.disable()

    def test_epoch_installs_its_vote_map(self, monkeypatch):
        installed = []
        real_begin = sanitize.begin_run

        def recording_begin(votes, function):
            installed.append(dict(votes))
            real_begin(votes, function)

        monkeypatch.setattr(sanitize, "begin_run", recording_begin)
        session = MonitoringSession(
            group_size=16, sample_votes=constant_votes(5.0), seed=4
        )
        session.run_epochs(2)
        assert len(installed) == 2
        assert all(set(votes) == set(range(16)) for votes in installed)

    def test_planted_mass_violation_is_caught(self, monkeypatch):
        session = MonitoringSession(
            group_size=16, sample_votes=constant_votes(5.0), seed=4
        )
        real_lift = session.function.lift

        def lying_lift(member_id, vote):
            state = real_lift(member_id, vote)
            if member_id != 0:
                return state
            # Member 0 claims more mass than its ground-truth vote:
            # average payload is (sum, count) — inflate the sum only,
            # so the count channel stays self-consistent and only the
            # ground-truth mass check can notice.
            total, count = state.payload
            return type(state)((total + 3.0, count), state.members)

        monkeypatch.setattr(session.function, "lift", lying_lift)
        with pytest.raises(sanitize.SanitizerError) as excinfo:
            session.run_epoch()
        assert excinfo.value.violation.kind == "mass-conservation"

    def test_ground_truth_cleared_after_epoch(self):
        session = MonitoringSession(
            group_size=16, sample_votes=constant_votes(5.0), seed=4
        )
        session.run_epoch()
        assert sanitize._GROUND_TRUTH is None
