"""Unit tests for the block-drawn sampler (``repro.sim.sampling``).

The load-bearing property is the stream-compatibility guarantee: the
values a :class:`BlockedSampler` produces for a fixed seed are
independent of the block size, including the unvectorized scalar
reference path (``block=0``), because ``Generator.random(n)`` consumes
the bit stream exactly like ``n`` scalar calls.  Everything the
protocols draw — gossip targets, batch subsets, partial views — reduces
to these primitives, so pinning them here pins the whole stream.
"""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.sampling import DEFAULT_BLOCK, BlockedSampler


def stream(seed=0):
    return RngRegistry(seed).stream("sampling-test")


class TestStreamCompatibility:
    @pytest.mark.parametrize("block", [1, 2, 7, 31, DEFAULT_BLOCK])
    def test_uniforms_identical_to_scalar_reference(self, block):
        reference = BlockedSampler(stream(), block=0)
        blocked = BlockedSampler(stream(), block=block)
        for __ in range(3 * DEFAULT_BLOCK + 5):
            assert blocked.uniform() == reference.uniform()

    def test_uniforms_identical_to_raw_generator_calls(self):
        rng = stream()
        expected = [rng.random() for __ in range(50)]
        sampler = BlockedSampler(stream())
        assert [sampler.uniform() for __ in range(50)] == expected

    @pytest.mark.parametrize("block", [1, 3, DEFAULT_BLOCK])
    def test_pick_distinct_identical_across_block_sizes(self, block):
        reference = BlockedSampler(stream(seed=7), block=0)
        blocked = BlockedSampler(stream(seed=7), block=block)
        for __ in range(200):
            assert blocked.pick_distinct(10, 3) == reference.pick_distinct(
                10, 3
            )

    def test_mixed_primitives_stay_aligned(self):
        """Interleaving uniform/index/pick_distinct never desyncs."""
        reference = BlockedSampler(stream(seed=3), block=0)
        blocked = BlockedSampler(stream(seed=3), block=5)
        for size in range(1, 40):
            assert blocked.index(size) == reference.index(size)
            assert blocked.pick_distinct(size, size // 2) == (
                reference.pick_distinct(size, size // 2)
            )
            assert blocked.uniform() == reference.uniform()


class TestDrawAccounting:
    def test_uniform_and_index_consume_one_double(self):
        sampler = BlockedSampler(stream())
        sampler.uniform()
        assert sampler.consumed == 1
        sampler.index(17)
        assert sampler.consumed == 2

    @pytest.mark.parametrize("n,k", [(10, 0), (10, 3), (10, 10), (1, 1)])
    def test_pick_distinct_consumes_exactly_k(self, n, k):
        sampler = BlockedSampler(stream())
        sampler.pick_distinct(n, k)
        assert sampler.consumed == k


class TestPickDistinct:
    def test_returns_k_distinct_in_range(self):
        sampler = BlockedSampler(stream(seed=11))
        for __ in range(500):
            picks = sampler.pick_distinct(12, 5)
            assert len(picks) == 5
            assert len(set(picks)) == 5
            assert all(0 <= p < 12 for p in picks)

    def test_k_equals_n_is_a_permutation_of_range(self):
        sampler = BlockedSampler(stream())
        assert sorted(sampler.pick_distinct(6, 6)) == list(range(6))

    def test_k_zero_is_empty(self):
        assert BlockedSampler(stream()).pick_distinct(9, 0) == []

    def test_every_subset_reachable(self):
        """All C(5, 2) = 10 subsets occur over a long seeded run."""
        sampler = BlockedSampler(stream(seed=2))
        seen = {
            frozenset(sampler.pick_distinct(5, 2)) for __ in range(500)
        }
        assert len(seen) == 10

    def test_index_is_uniformly_spread(self):
        sampler = BlockedSampler(stream(seed=5))
        counts = [0] * 4
        for __ in range(4000):
            counts[sampler.index(4)] += 1
        assert min(counts) > 800  # fair to well within 20% of 1000


class TestValidation:
    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            BlockedSampler(stream(), block=-1)

    def test_index_requires_positive_n(self):
        with pytest.raises(ValueError):
            BlockedSampler(stream()).index(0)

    def test_pick_distinct_bounds_checked(self):
        sampler = BlockedSampler(stream())
        with pytest.raises(ValueError):
            sampler.pick_distinct(3, 4)
        with pytest.raises(ValueError):
            sampler.pick_distinct(3, -1)
