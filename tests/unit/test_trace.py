"""Unit tests for the tracing subsystem."""

import pytest

from repro.sim.engine import Process, SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.network import LossyNetwork, Network
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceEvent, Tracer


class Chatter(Process):
    def __init__(self, node_id, target, rounds=3):
        super().__init__(node_id)
        self.target = target
        self.rounds = rounds

    def on_round(self, ctx):
        ctx.send(self.target, "hi")
        if ctx.round + 1 >= self.rounds:
            ctx.terminate()


def _run(network=None, failures=None, tracer=None, rounds=3):
    engine = SimulationEngine(
        network=network or Network(),
        failure_model=failures,
        rngs=RngRegistry(0),
        max_rounds=100,
        tracer=tracer,
    )
    engine.add_processes([Chatter(0, 1, rounds), Chatter(1, 0, rounds)])
    engine.run()
    return engine


class TestTracer:
    def test_send_and_deliver_counted(self):
        tracer = Tracer()
        _run(tracer=tracer)
        assert tracer.counts["send"] == 6
        # last-round sends arrive after both terminated but are delivered
        assert tracer.counts["deliver"] >= 4
        assert tracer.counts["terminate"] == 2

    def test_lost_sends_traced(self):
        tracer = Tracer()
        _run(network=LossyNetwork(ucastl=1.0), tracer=tracer)
        assert tracer.counts["send_lost"] == 6
        assert tracer.counts["send"] == 0

    def test_crash_traced(self):
        tracer = Tracer()
        _run(failures=ScheduledFailures(crash_at={1: [0]}), tracer=tracer)
        assert tracer.counts["crash"] == 1
        crash_events = tracer.of_kind("crash")
        assert crash_events[0].node == 0
        assert crash_events[0].round == 1

    def test_bandwidth_rejection_traced(self):
        tracer = Tracer()
        _run(network=Network(max_sends_per_round=0), tracer=tracer)
        assert tracer.counts["send_rejected"] == 6

    def test_predicate_filters_storage_not_counts(self):
        tracer = Tracer(predicate=lambda e: e.kind == "terminate")
        _run(tracer=tracer)
        assert all(e.kind == "terminate" for e in tracer.events)
        assert tracer.counts["send"] == 6

    def test_max_events_cap(self):
        tracer = Tracer(max_events=2)
        _run(tracer=tracer)
        assert len(tracer.events) == 2
        assert tracer.dropped_events > 0
        assert "beyond cap" in tracer.summary()

    def test_queries(self):
        tracer = Tracer()
        _run(tracer=tracer)
        assert tracer.for_node(0)
        assert tracer.rounds_of("terminate") == [2, 2]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record(TraceEvent(0, "explode", 0))

    def test_summary_lists_all_kinds(self):
        text = Tracer().summary()
        for kind in ("send", "deliver", "crash", "terminate"):
            assert kind in text

    def test_no_tracer_is_fine(self):
        engine = _run(tracer=None)
        assert engine.tracer is None
