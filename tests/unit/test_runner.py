"""Unit tests for the experiment runner and RunConfig plumbing."""

import dataclasses
import math

import pytest

from repro.experiments.params import PAPER_DEFAULTS, RunConfig, with_params
from repro.experiments.runner import (
    PROTOCOLS,
    incompleteness_samples,
    run_once,
)


class TestRunConfig:
    def test_paper_defaults_match_section7(self):
        assert PAPER_DEFAULTS.n == 200
        assert PAPER_DEFAULTS.ucastl == 0.25
        assert PAPER_DEFAULTS.pf == 0.001
        assert PAPER_DEFAULTS.k == 4
        assert PAPER_DEFAULTS.fanout_m == 2
        assert PAPER_DEFAULTS.rounds_factor_c == 1.0

    def test_with_params_overrides(self):
        config = with_params(n=400, ucastl=0.5)
        assert config.n == 400
        assert config.ucastl == 0.5
        assert config.pf == PAPER_DEFAULTS.pf

    def test_with_seed(self):
        config = PAPER_DEFAULTS.with_seed(9)
        assert config.seed == 9
        assert dataclasses.replace(config, seed=0) == PAPER_DEFAULTS

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_DEFAULTS.n = 5


class TestRunOnce:
    def test_lossless_failfree_is_complete(self):
        config = with_params(n=64, ucastl=0.0, pf=0.0)
        result = run_once(config)
        assert result.completeness == 1.0
        assert result.incompleteness == 0.0
        assert result.crashes == 0
        assert result.mean_estimate_error == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_per_seed(self):
        config = with_params(n=64, seed=5)
        a = run_once(config)
        b = run_once(config)
        assert a.completeness == b.completeness
        assert a.messages_sent == b.messages_sent

    def test_seed_changes_run(self):
        a = run_once(with_params(n=64, seed=1, ucastl=0.4))
        b = run_once(with_params(n=64, seed=2, ucastl=0.4))
        assert (a.messages_sent, a.completeness) != (
            b.messages_sent, b.completeness
        )

    def test_true_value_is_direct_aggregate(self):
        config = with_params(n=32, ucastl=0.0, pf=0.0, aggregate="max")
        result = run_once(config)
        assert result.true_value <= config.vote_high
        assert result.mean_estimate_error == 0.0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_once(with_params(protocol="paxos"))

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_protocol_runs_lossless(self, protocol):
        config = with_params(
            n=32, protocol=protocol, ucastl=0.0, pf=0.0
        )
        result = run_once(config)
        if protocol == "flat_gossip":
            # Flat gossip cannot finish N distinct coupons in the same
            # round budget — that is exactly why the hierarchy exists.
            assert result.completeness > 0.5
        else:
            assert result.completeness == pytest.approx(1.0)

    def test_partition_config_builds_partitioned_network(self):
        result = run_once(with_params(n=32, partl=1.0, ucastl=0.0, pf=0.0))
        # Total loss across halves must hurt completeness somewhere.
        assert result.messages_dropped > 0

    def test_gossip_rounds_bounded_by_schedule(self):
        config = with_params(n=128, ucastl=0.0, pf=0.0)
        result = run_once(config)
        rpp = math.ceil(math.log(128))
        phases = 4  # round(log_4(32)) + 1 for N=128, K=4
        assert result.rounds <= rpp * phases + 1


class TestIncompletenessSamples:
    def test_counts_and_range(self):
        samples = incompleteness_samples(with_params(n=32), runs=4)
        assert len(samples) == 4
        assert all(0.0 <= s <= 1.0 for s in samples)

    def test_distinct_seeds_used(self):
        config = with_params(n=64, ucastl=0.5, seed=10)
        samples = incompleteness_samples(config, runs=6)
        direct = [
            run_once(config.with_seed(10 + offset)).incompleteness
            for offset in range(6)
        ]
        assert samples == direct
