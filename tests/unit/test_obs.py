"""Unit tests for the observability package (repro.obs) and the
core-side phase-event vocabulary (repro.core.observe)."""

import io
import json

import pytest

from repro.core.gridbox import GridBoxHierarchy
from repro.core.observe import (
    PHASE_EVENT_KINDS,
    PhaseEvent,
    format_key,
    format_subtree,
)
from repro.obs.export import validate_trace_lines
from repro.obs.phase import PhaseTrace
from repro.obs.profiling import SectionProfiler
from repro.obs.telemetry import (
    RunTelemetry,
    TelemetrySummary,
    merge_summaries,
)
from repro.sim.trace import TraceEvent, Tracer


def _event(kind="phase_enter", member=0, round=0, phase=1, **kwargs):
    return PhaseEvent(
        kind=kind, member=member, round=round, phase=phase, **kwargs
    )


class TestPhaseTrace:
    def test_counts_every_kind(self):
        trace = PhaseTrace()
        for kind in PHASE_EVENT_KINDS:
            trace.emit(_event(kind=kind))
        assert all(trace.counts[kind] == 1 for kind in PHASE_EVENT_KINDS)
        assert len(trace.events) == len(PHASE_EVENT_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown phase event"):
            PhaseTrace().emit(_event(kind="explode"))

    def test_counters_exact_past_cap(self):
        trace = PhaseTrace(max_events=2)
        for index in range(10):
            trace.emit(_event(member=index))
        assert len(trace.events) == 2
        assert trace.dropped_events == 8
        assert trace.counts["phase_enter"] == 10

    def test_counters_only_shape_has_no_drops(self):
        # store_events=False means nothing was meant to be stored, so
        # nothing counts as "dropped" (dropped == hit the cap).
        trace = PhaseTrace(store_events=False)
        for index in range(5):
            trace.emit(_event(member=index))
        assert trace.events == []
        assert trace.dropped_events == 0
        assert trace.counts["phase_enter"] == 5

    def test_per_phase_timeout_and_early_counters(self):
        trace = PhaseTrace()
        trace.emit(_event(kind="bump_up_timeout", phase=1))
        trace.emit(_event(kind="bump_up_timeout", phase=1))
        trace.emit(_event(kind="bump_up_timeout", phase=2))
        trace.emit(_event(kind="bump_up_early", phase=1))
        assert trace.phase_timeouts == {1: 2, 2: 1}
        assert trace.phase_early == {1: 1}

    def test_incomplete_finalizes(self):
        trace = PhaseTrace()
        trace.emit(_event(kind="finalize", coverage=1.0))
        trace.emit(_event(kind="finalize", coverage=0.5))
        trace.emit(_event(kind="finalize", coverage=None))
        assert trace.incomplete_finalizes == 1

    def test_reset(self):
        trace = PhaseTrace(max_events=1)
        trace.emit(_event(kind="bump_up_timeout"))
        trace.emit(_event(kind="finalize", coverage=0.5))
        trace.reset()
        assert trace.events == []
        assert not trace.counts
        assert not trace.phase_timeouts
        assert trace.incomplete_finalizes == 0
        assert trace.dropped_events == 0

    def test_member_queries(self):
        trace = PhaseTrace()
        trace.emit(_event(member=1, kind="bump_up_timeout", phase=1))
        trace.emit(_event(member=1, kind="finalize", coverage=0.9))
        trace.emit(_event(member=2, kind="finalize", coverage=1.0))
        assert len(trace.for_member(1)) == 2
        assert trace.finalize_of(1).coverage == 0.9
        assert trace.timeouts_of(1)[0].phase == 1
        assert trace.timeouts_of(2) == []

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            PhaseTrace(max_events=-1)

    def test_summary_mentions_cap_overflow(self):
        trace = PhaseTrace(max_events=0, store_events=True)
        # max_events=0 with storage on: the degenerate explicit cap.
        trace.emit(_event())
        assert "beyond cap" in trace.summary()


class TestTracerCapAndPredicate:
    """Tracer cap/predicate interaction (satellite of the obs PR)."""

    def test_predicate_rejections_do_not_count_as_drops(self):
        tracer = Tracer(max_events=10, predicate=lambda e: False)
        for index in range(5):
            tracer.record(TraceEvent(0, "send", index))
        assert tracer.events == []
        assert tracer.dropped_events == 0
        assert tracer.counts["send"] == 5

    def test_counters_exact_past_cap(self):
        tracer = Tracer(max_events=3)
        for index in range(10):
            tracer.record(TraceEvent(0, "send", index))
        assert len(tracer.events) == 3
        assert tracer.dropped_events == 7
        assert tracer.counts["send"] == 10

    def test_counters_only_shape_has_no_drops(self):
        tracer = Tracer(max_events=0)
        for index in range(5):
            tracer.record(TraceEvent(0, "send", index))
        assert tracer.events == []
        assert tracer.dropped_events == 0
        assert tracer.counts["send"] == 5

    def test_reset(self):
        tracer = Tracer(max_events=1)
        tracer.record(TraceEvent(0, "send", 0))
        tracer.record(TraceEvent(0, "send", 1))
        tracer.reset()
        assert tracer.events == []
        assert not tracer.counts
        assert tracer.dropped_events == 0


class TestTelemetrySummary:
    def test_merge_sums_fields_and_pairs(self):
        first = TelemetrySummary(
            runs=1, bump_up_timeout=3, phase_timeouts=((1, 2), (2, 1)),
            sanitizer_active=True,
        )
        second = TelemetrySummary(
            runs=1, bump_up_timeout=1, phase_timeouts=((2, 4),),
            sanitizer_active=True,
        )
        merged = merge_summaries([first, second])
        assert merged.runs == 2
        assert merged.bump_up_timeout == 4
        assert merged.phase_timeout_map() == {1: 2, 2: 5}
        assert merged.sanitizer_active

    def test_merge_sanitizer_is_conjunction(self):
        merged = merge_summaries([
            TelemetrySummary(sanitizer_active=True),
            TelemetrySummary(sanitizer_active=False),
        ])
        assert not merged.sanitizer_active

    def test_merge_empty(self):
        assert merge_summaries([]).runs == 0

    def test_to_record_uses_string_phase_keys(self):
        summary = TelemetrySummary(phase_timeouts=((1, 2),))
        record = summary.to_record()
        assert record["phase_timeouts"] == {"1": 2}
        json.dumps(record)  # must be JSON-serializable as-is


class TestRunTelemetry:
    def test_compact_shape_stores_nothing(self):
        telemetry = RunTelemetry.compact()
        assert telemetry.tracer.max_events == 0
        assert telemetry.metrics is None
        assert telemetry.phase_trace.max_events == 0

    def test_profile_is_noop_without_profiler(self):
        telemetry = RunTelemetry.compact()
        with telemetry.profile("anything"):
            pass  # must not raise

    def test_summary_reflects_collected_events(self):
        telemetry = RunTelemetry.compact()
        telemetry.phase_trace.emit(_event(kind="bump_up_timeout", phase=2))
        telemetry.tracer.record(TraceEvent(0, "send", 0))
        telemetry.rounds = 7
        summary = telemetry.summary()
        assert summary.bump_up_timeout == 1
        assert summary.phase_timeout_map() == {2: 1}
        assert summary.sends == 1
        assert summary.rounds == 7

    def test_finish_records_config_duck_typed(self):
        import dataclasses

        @dataclasses.dataclass
        class FakeConfig:
            n: int = 8
            seed: int = 1

        telemetry = RunTelemetry.compact()
        telemetry.finish(config=FakeConfig())
        assert telemetry.config_record == {"n": 8, "seed": 1}


class TestSectionProfiler:
    def test_sections_accumulate(self):
        profiler = SectionProfiler()
        with profiler.section("a"):
            pass
        with profiler.section("a"):
            pass
        with profiler.section("b"):
            pass
        assert profiler.calls == {"a": 2, "b": 1}
        assert set(profiler.totals) == {"a", "b"}
        assert all(seconds >= 0.0 for seconds in profiler.totals.values())

    def test_merge_and_report(self):
        first, second = SectionProfiler(), SectionProfiler()
        with first.section("a"):
            pass
        with second.section("a"):
            pass
        first.merge(second)
        assert first.calls["a"] == 2
        assert "a" in first.report()

    def test_as_records_is_json_ready(self):
        profiler = SectionProfiler()
        with profiler.section("x"):
            pass
        json.dumps(profiler.as_records())


class TestSubtreeFormatting:
    def test_root_and_prefixes(self):
        hierarchy = GridBoxHierarchy(64, 4)  # base-4 digit addresses
        assert format_subtree(hierarchy, hierarchy.root()) == "*"
        leaf_parent = hierarchy.subtree_of(0, 1)
        label = format_subtree(hierarchy, leaf_parent)
        assert label.endswith("*")
        assert len(label.rstrip("*")) == hierarchy.num_phases - 1

    def test_format_key_members_and_subtrees(self):
        hierarchy = GridBoxHierarchy(64, 4)
        assert format_key(hierarchy, 17) == "member:17"
        subtree = hierarchy.subtree_of(0, 1)
        assert format_key(hierarchy, subtree).endswith("*")


class TestValidateTraceLines:
    def _valid_lines(self):
        header = {"record": "header", "schema": "repro-trace/1",
                  "config": {}, "sanitizer_active": False}
        summary = {"record": "summary",
                   **TelemetrySummary().to_record()}
        return [json.dumps(header), json.dumps(summary)]

    def test_minimal_valid_document(self):
        assert validate_trace_lines(self._valid_lines()) == []

    def test_bad_json_reported(self):
        errors = validate_trace_lines(["{not json"])
        assert errors and "line 1" in errors[0]

    def test_header_must_come_first(self):
        lines = self._valid_lines()
        errors = validate_trace_lines(list(reversed(lines)))
        assert any("header" in error for error in errors)

    def test_unknown_record_type_reported(self):
        lines = self._valid_lines()
        lines.insert(1, json.dumps({"record": "mystery"}))
        errors = validate_trace_lines(lines)
        assert any("mystery" in error for error in errors)

    def test_unknown_phase_kind_reported(self):
        lines = self._valid_lines()
        lines.insert(1, json.dumps({
            "record": "phase", "kind": "explode", "member": 0,
            "round": 0, "phase": 1,
        }))
        errors = validate_trace_lines(lines)
        assert any("explode" in error for error in errors)

    def test_accepts_file_object(self):
        handle = io.StringIO("\n".join(self._valid_lines()) + "\n")
        assert validate_trace_lines(handle) == []
