"""``repro top`` — target parsing, snapshot digestion, live polling.

``node_view`` reads the positional-label ``repro-metrics/1`` sample
shape, so the synthetic registries here are built through the real
:class:`MetricsRegistry` (not hand-rolled dicts): any schema drift in
the snapshot format breaks these tests, which is the point.  The live
test runs a real exposition listener on a background event loop and
drives the actual ``run_top`` entry point against it.
"""

import argparse
import asyncio
import json
import socket
import threading

import pytest

from repro.net.exposition import start_metrics_server
from repro.net.top import (
    TOP_SCHEMA,
    node_view,
    parse_target,
    run_top,
    top_record,
)
from repro.obs.metrics import MetricsRegistry


def _node_registry(
    node=0, round=9, started=1, terminated=1, tx=40, rx=38,
) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_net_tx_total", "frames out", ("node", "type")
    ).labels(node, "gossip").inc(tx)
    registry.counter(
        "repro_net_rx_total", "frames in", ("node", "type")
    ).labels(node, "gossip").inc(rx)
    registry.counter(
        "repro_net_tx_bytes_total", "bytes out", ("node", "type")
    ).labels(node, "gossip").inc(tx * 64)
    registry.gauge("repro_net_round", "round", ("node",)) \
        .labels(node).set(round)
    registry.gauge("repro_net_started", "started", ("node",)) \
        .labels(node).set(started)
    registry.gauge("repro_net_terminated", "terminated", ("node",)) \
        .labels(node).set(terminated)
    registry.gauge(
        "repro_net_suspected_peers", "suspects", ("node",)
    ).labels(node).set(2)
    registry.counter(
        "repro_net_pings_sent_total", "pings", ("node",)
    ).labels(node).inc(6)
    registry.counter(
        "repro_net_pongs_received_total", "pongs", ("node",)
    ).labels(node).inc(5)
    return registry


class TestParseTarget:
    def test_host_port(self):
        assert parse_target("127.0.0.1:9100") == ("127.0.0.1", 9100)

    @pytest.mark.parametrize(
        "bad", ["9100", ":9100", "host:", "host:abc", "host"]
    )
    def test_malformed_targets_raise(self, bad):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_target(bad)


class TestNodeView:
    def test_down_endpoint(self):
        assert node_view(None) == {"up": False}

    def test_view_of_a_converged_node(self):
        view = node_view(_node_registry().snapshot())
        assert view["up"] is True
        assert view["node"] == "0"
        assert view["round"] == 9
        assert view["started"] is True
        assert view["converged"] is True
        assert view["tx_total"] == 40
        assert view["rx_total"] == 38
        assert view["tx_bytes"] == 40 * 64
        assert view["suspected_peers"] == 2
        assert view["pings_sent"] == 6
        assert view["pongs_received"] == 5

    def test_bootstrap_node_is_not_started(self):
        view = node_view(
            _node_registry(started=0, terminated=0).snapshot()
        )
        assert view["started"] is False
        assert view["converged"] is False

    def test_missing_families_degrade_to_defaults(self):
        registry = MetricsRegistry()
        registry.gauge("repro_net_round", "round", ("node",)) \
            .labels(3).set(1)
        view = node_view(registry.snapshot())
        assert view["up"] is True
        assert view["node"] == "3"
        assert view["tx_total"] == 0
        assert view["suspected_peers"] is None


class TestTopRecord:
    def test_counts_and_schema(self):
        targets = [("h", 1), ("h", 2), ("h", 3)]
        views = [
            node_view(_node_registry(node=0).snapshot()),
            node_view(_node_registry(node=1, terminated=0).snapshot()),
            node_view(None),
        ]
        record = top_record(targets, views, [1.5, None, None])
        assert record["schema"] == TOP_SCHEMA
        assert record["nodes_up"] == 2
        assert record["nodes_converged"] == 1
        assert record["nodes"][0]["endpoint"] == "h:1"
        assert record["nodes"][0]["msgs_per_s"] == 1.5
        assert record["nodes"][2] == {
            "endpoint": "h:3", "up": False, "msgs_per_s": None,
        }


def _tcp_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


class _LiveEndpoint:
    """A real exposition listener on a background event loop."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        server = self._loop.run_until_complete(
            start_metrics_server(self.registry, port=0)
        )
        self.port = server.port
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(server.close())

    def __enter__(self) -> "_LiveEndpoint":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("exposition listener failed to start")
        return self

    def __exit__(self, *exc) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


def _args(targets, **overrides) -> argparse.Namespace:
    defaults = dict(
        targets=targets, once=True, json=True,
        interval=2.0, timeout=2.0, count=0,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.mark.skipif(
    not _tcp_available(), reason="cannot bind localhost TCP sockets"
)
class TestRunTop:
    def test_once_json_against_a_live_endpoint(self, capsys):
        with _LiveEndpoint(_node_registry()) as endpoint:
            code = run_top(_args([f"127.0.0.1:{endpoint.port}"]))
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["schema"] == TOP_SCHEMA
        assert record["nodes_up"] == 1
        assert record["nodes_converged"] == 1
        assert record["nodes"][0]["tx_total"] == 40

    def test_once_table_against_a_live_endpoint(self, capsys):
        with _LiveEndpoint(_node_registry()) as endpoint:
            code = run_top(_args(
                [f"127.0.0.1:{endpoint.port}"], json=False,
            ))
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "1/1 up, 1/1 converged" in out

    def test_down_endpoint_exits_nonzero(self, capsys):
        # A freshly probed-and-closed port refuses connections fast.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = run_top(_args([f"127.0.0.1:{port}"], timeout=0.5))
        record = json.loads(capsys.readouterr().out)
        assert code == 1
        assert record["nodes_up"] == 0
        assert record["nodes"][0]["up"] is False

    def test_malformed_target_is_a_usage_error(self, capsys):
        assert run_top(_args(["nonsense"])) == 2
        assert "HOST:PORT" in capsys.readouterr().err
