"""Unit tests for the generic parameter sweep utility."""

import pytest

from repro.experiments.params import with_params
from repro.experiments.sweep import Sweep


class TestGrid:
    def test_cartesian_product(self):
        sweep = Sweep(base=with_params(n=16), runs=1)
        cells = sweep.grid(ucastl=[0.1, 0.2], k=[2, 4])
        assert len(cells) == 4
        assert {"ucastl": 0.1, "k": 2} in cells
        assert {"ucastl": 0.2, "k": 4} in cells

    def test_unknown_field_rejected(self):
        sweep = Sweep(base=with_params(n=16), runs=1)
        with pytest.raises(ValueError, match="loss_rate"):
            sweep.grid(loss_rate=[0.1])

    def test_single_axis(self):
        sweep = Sweep(base=with_params(n=16), runs=1)
        assert sweep.grid(n=[8, 16, 32]) == [
            {"n": 8}, {"n": 16}, {"n": 32},
        ]


class TestRun:
    def test_run_cell_metrics(self):
        sweep = Sweep(base=with_params(n=16, ucastl=0.0, pf=0.0), runs=2)
        row = sweep.run_cell({"k": 2})
        assert row["k"] == 2
        assert row["incompleteness"] == 0.0
        assert row["messages"] > 0
        assert row["rounds"] > 0

    def test_run_table_shape(self):
        sweep = Sweep(base=with_params(n=16, ucastl=0.0, pf=0.0), runs=1)
        table = sweep.run(sweep.grid(k=[2, 4]), title="k sweep")
        assert table.title == "k sweep"
        assert len(table.rows) == 2
        assert table.headers[0] == "k"
        assert "incompleteness" in table.headers

    def test_empty_cells_rejected(self):
        sweep = Sweep(base=with_params(n=16), runs=1)
        with pytest.raises(ValueError):
            sweep.run([])

    def test_runs_validated(self):
        with pytest.raises(ValueError):
            Sweep(base=with_params(n=16), runs=0)

    def test_seeded_reproducibility(self):
        sweep = Sweep(base=with_params(n=24, ucastl=0.4), runs=3)
        a = sweep.run_cell({"k": 4})
        b = sweep.run_cell({"k": 4})
        assert a == b
