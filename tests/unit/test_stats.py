"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    is_monotone,
    loglog_slope,
    semilog_slope,
    summarize,
)


class TestSummarize:
    def test_single_sample(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.std_error == 0.0
        assert summary.low == summary.high == 3.0

    def test_constant_samples(self):
        summary = summarize([2.0, 2.0, 2.0])
        assert summary.mean == 2.0
        assert summary.std_error == 0.0

    def test_interval_contains_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.low < summary.mean < summary.high

    def test_wider_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = summarize(samples, confidence=0.5)
        wide = summarize(samples, confidence=0.99)
        assert wide.high - wide.low > narrow.high - narrow.low

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSlopes:
    def test_loglog_recovers_power_law(self):
        xs = [10, 20, 40, 80]
        ys = [x**-2.0 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(-2.0)

    def test_semilog_recovers_decay_rate(self):
        xs = [0, 1, 2, 3, 4]
        ys = [math.exp(-0.7 * x) for x in xs]
        assert semilog_slope(xs, ys) == pytest.approx(-0.7)

    def test_zero_values_floored_not_fatal(self):
        slope = semilog_slope([1, 2, 3], [0.1, 0.01, 0.0], floor=1e-6)
        assert slope < 0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_loglog_requires_positive_x(self):
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            semilog_slope([1, 2], [1])


class TestIsMonotone:
    def test_strictly_increasing(self):
        assert is_monotone([1, 2, 3])

    def test_decreasing_detected(self):
        assert not is_monotone([3, 2, 1])
        assert is_monotone([3, 2, 1], increasing=False)

    def test_tolerance_allows_noise(self):
        assert not is_monotone([1.0, 0.99, 2.0])
        assert is_monotone([1.0, 0.99, 2.0], tolerance=0.02)

    def test_empty_and_single(self):
        assert is_monotone([])
        assert is_monotone([5])
