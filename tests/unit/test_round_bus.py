"""Unit tests for the engine's deterministic begin-round event bus."""

import pytest

from repro.sim.engine import Process, SimulationEngine
from repro.sim.events import RoundBus
from repro.sim.failures import NoFailures
from repro.sim.network import LossyNetwork
from repro.sim.rng import RngRegistry


class TestRoundBus:
    def test_emit_preserves_subscription_order(self):
        bus = RoundBus()
        calls = []
        bus.subscribe(lambda r: calls.append(("a", r)))
        bus.subscribe(lambda r: calls.append(("b", r)))
        bus.emit(3)
        bus.emit(4)
        assert calls == [("a", 3), ("b", 3), ("a", 4), ("b", 4)]

    def test_subscribe_returns_callback(self):
        bus = RoundBus()
        marker = bus.subscribe(lambda r: None)
        assert len(bus) == 1
        bus.unsubscribe(marker)
        assert len(bus) == 0

    def test_unsubscribed_absent_raises(self):
        with pytest.raises(ValueError):
            RoundBus().unsubscribe(lambda r: None)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            RoundBus().subscribe("not-a-callback")


class _Counter(Process):
    """Terminates after three rounds."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.rounds_seen = 0

    def on_round(self, ctx):
        self.rounds_seen += 1
        if self.rounds_seen >= 3:
            ctx.terminate()


class TestEngineIntegration:
    def _engine(self, bus=None):
        engine = SimulationEngine(
            network=LossyNetwork(ucastl=0.0),
            failure_model=NoFailures(),
            rngs=RngRegistry(0),
            max_rounds=10,
            round_bus=bus,
        )
        engine.add_processes([_Counter(0)])
        return engine

    def test_network_reset_is_first_subscriber(self):
        engine = self._engine()
        assert len(engine.round_bus) == 1

    def test_bus_emits_every_round_in_order(self):
        bus = RoundBus()
        seen = []
        engine = self._engine(bus)
        bus.subscribe(seen.append)
        engine.run()
        assert seen == sorted(seen)
        assert len(seen) == engine.stats.rounds_executed

    def test_external_bus_instance_is_used(self):
        bus = RoundBus()
        engine = self._engine(bus)
        assert engine.round_bus is bus
