"""Unit tests for the Hierarchical Gossiping protocol process."""

import pytest

from repro.core.aggregates import AverageAggregate, SumAggregate
from repro.core.gridbox import GridAssignment, GridBoxHierarchy, SubtreeId
from repro.core.hashing import FairHash, StaticHash
from repro.core.hierarchical_gossip import (
    GossipParams,
    HierarchicalGossipProcess,
    build_hierarchical_gossip_group,
    rounds_per_phase_for,
)
from repro.core.messages import GossipBatch, GossipValue
from repro.sim.engine import SimulationEngine
from repro.sim.network import LossyNetwork, Network
from repro.sim.rng import RngRegistry


def _figure1_world(function=None):
    """The paper's Figure 1 example: 8 members, K=2, fixed boxes."""
    function = function or AverageAggregate()
    votes = {m: float(m) for m in range(1, 9)}
    boxes = {7: 0, 3: 0, 8: 0, 6: 1, 5: 1, 2: 2, 4: 2, 1: 3}
    hierarchy = GridBoxHierarchy(8, 2)
    assignment = GridAssignment(hierarchy, votes, StaticHash(boxes))
    return votes, function, assignment


def _run(votes, function, assignment, params=None, network=None, seed=0,
         max_rounds=200):
    processes = build_hierarchical_gossip_group(
        votes, function, assignment, params or GossipParams()
    )
    engine = SimulationEngine(
        network=network or Network(max_message_size=1 << 20),
        rngs=RngRegistry(seed),
        max_rounds=max_rounds,
    )
    engine.add_processes(processes)
    engine.run()
    return processes, engine


class TestRoundsPerPhase:
    def test_formula(self):
        import math
        assert rounds_per_phase_for(200, 1.0) == math.ceil(math.log(200))

    def test_scaling_with_c(self):
        assert rounds_per_phase_for(200, 2.0) == 2 * rounds_per_phase_for(
            200, 1.0
        ) or rounds_per_phase_for(200, 2.0) >= rounds_per_phase_for(200, 1.0)

    def test_minimum_one(self):
        assert rounds_per_phase_for(1, 0.5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_per_phase_for(0, 1.0)
        with pytest.raises(ValueError):
            rounds_per_phase_for(10, 0.0)
        with pytest.raises(ValueError):
            rounds_per_phase_for(10, 1.0, fanout_m=0)


class TestGossipParams:
    def test_override_rounds(self):
        assert GossipParams(rounds_per_phase=3).resolve_rounds(10_000) == 3

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            GossipParams(rounds_per_phase=0).resolve_rounds(100)


class TestLosslessCorrectness:
    def test_exact_average_on_figure1(self):
        votes, function, assignment = _figure1_world()
        processes, __ = _run(votes, function, assignment)
        expected = sum(votes.values()) / len(votes)
        for process in processes:
            assert process.result is not None
            assert function.finalize(process.result) == pytest.approx(expected)
            assert process.result.members == frozenset(votes)

    def test_exact_sum(self):
        votes, __, assignment = _figure1_world()
        function = SumAggregate()
        processes, __ = _run(votes, function, assignment)
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(36.0)

    def test_single_value_mode_also_converges_lossless(self):
        votes, function, assignment = _figure1_world()
        params = GossipParams(batch_values=False, rounds_per_phase=12)
        processes, __ = _run(votes, function, assignment, params)
        for process in processes:
            assert process.result.members == frozenset(votes)

    def test_fair_hash_group(self):
        votes = {i: float(i % 5) for i in range(50)}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(50, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(salt=2))
        processes = build_hierarchical_gossip_group(
            votes, function, assignment
        )
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            rngs=RngRegistry(0), max_rounds=200,
        )
        engine.add_processes(processes)
        engine.run()
        expected = sum(votes.values()) / 50
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(expected)

    def test_runs_finish_by_global_deadline(self):
        votes, function, assignment = _figure1_world()
        params = GossipParams(rounds_per_phase=4)
        __, engine = _run(votes, function, assignment, params)
        assert engine.round <= 4 * assignment.hierarchy.num_phases + 1


class TestDegenerateGroups:
    def test_single_member_group(self):
        votes = {42: 7.5}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(1, 2)
        assignment = GridAssignment(hierarchy, votes, FairHash())
        processes, __ = _run(votes, function, assignment)
        assert function.finalize(processes[0].result) == 7.5

    def test_two_members(self):
        votes = {0: 1.0, 1: 3.0}
        function = AverageAggregate()
        hierarchy = GridBoxHierarchy(2, 2)
        assignment = GridAssignment(hierarchy, votes, FairHash(salt=1))
        processes, __ = _run(votes, function, assignment)
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(2.0)

    def test_all_members_in_one_box(self):
        """Adversarial layout: everyone crammed in one grid box still
        converges given a round budget sized to the box, not to K."""
        votes = {m: float(m) for m in range(6)}
        hierarchy = GridBoxHierarchy(6, 2)
        assignment = GridAssignment(
            hierarchy, votes, StaticHash({m: 0 for m in votes})
        )
        function = AverageAggregate()
        params = GossipParams(rounds_per_phase=10, max_batch=6)
        processes, __ = _run(votes, function, assignment, params)
        for process in processes:
            assert process.result.members == frozenset(votes)


class TestMessageHandling:
    def _process(self, member=7, params=None):
        votes, function, assignment = _figure1_world()
        return HierarchicalGossipProcess(
            node_id=member,
            vote=votes[member],
            function=function,
            assignment=assignment,
            view=tuple(votes),
            params=params or GossipParams(),
        )

    def test_stale_phase_ignored(self):
        process = self._process()
        process.known = {process.node_id: process.own_state()}
        process.phase = 2
        stale = GossipValue(1, 3, AverageAggregate().lift(3, 3.0))

        class FakeMessage:
            payload = stale

        process.on_message(None, FakeMessage())
        assert 3 not in process.known

    def test_future_phase_buffered(self):
        process = self._process()
        process.known = {process.node_id: process.own_state()}
        state = AverageAggregate().over({2: 2.0, 4: 4.0, 1: 1.0})
        future = GossipValue(3, SubtreeId(1, 1), state)

        class FakeMessage:
            payload = future

        process.on_message(None, FakeMessage())
        assert process._future[3][SubtreeId(1, 1)] is state

    def test_current_phase_accepted(self):
        process = self._process()
        process.known = {process.node_id: process.own_state()}
        vote = AverageAggregate().lift(3, 3.0)

        class FakeMessage:
            payload = GossipValue(1, 3, vote)

        process.on_message(None, FakeMessage())
        assert process.known[3] is vote

    def test_batch_accepted(self):
        process = self._process()
        process.known = {process.node_id: process.own_state()}
        f = AverageAggregate()
        batch = GossipBatch(1, ((3, f.lift(3, 3.0)), (8, f.lift(8, 8.0))))

        class FakeMessage:
            payload = batch

        process.on_message(None, FakeMessage())
        assert set(process.known) == {7, 3, 8}

    def test_coverage_preference_upgrades(self):
        process = self._process()
        process.phase = 2
        f = AverageAggregate()
        key = SubtreeId(2, 1)
        small = f.over({5: 5.0})
        big = f.over({5: 5.0, 6: 6.0})
        process.known = {}

        class Msg:
            def __init__(self, payload):
                self.payload = payload

        process.on_message(None, Msg(GossipValue(2, key, small)))
        process.on_message(None, Msg(GossipValue(2, key, big)))
        assert process.known[key] is big
        # And never downgrades:
        process.on_message(None, Msg(GossipValue(2, key, small)))
        assert process.known[key] is big

    def test_first_wins_ablation(self):
        process = self._process(params=GossipParams(prefer_coverage=False))
        process.phase = 2
        f = AverageAggregate()
        key = SubtreeId(2, 1)
        small = f.over({5: 5.0})
        big = f.over({5: 5.0, 6: 6.0})
        process.known = {}

        class Msg:
            def __init__(self, payload):
                self.payload = payload

        process.on_message(None, Msg(GossipValue(2, key, small)))
        process.on_message(None, Msg(GossipValue(2, key, big)))
        assert process.known[key] is small

    def test_unknown_payload_ignored(self):
        process = self._process()
        process.known = {process.node_id: process.own_state()}

        class FakeMessage:
            payload = "garbage"

        process.on_message(None, FakeMessage())
        assert set(process.known) == {7}


class TestExpectedKeys:
    def test_phase1_is_box(self):
        process_view = _figure1_world()
        votes, function, assignment = process_view
        process = HierarchicalGossipProcess(
            7, votes[7], function, assignment, tuple(votes), GossipParams()
        )
        assert process._expected_keys(1) == frozenset({7, 3, 8})

    def test_phase2_children(self):
        votes, function, assignment = _figure1_world()
        process = HierarchicalGossipProcess(
            7, votes[7], function, assignment, tuple(votes), GossipParams()
        )
        assert process._expected_keys(2) == frozenset(
            {SubtreeId(2, 0), SubtreeId(2, 1)}
        )

    def test_partial_view_limits_expectations(self):
        votes, function, assignment = _figure1_world()
        process = HierarchicalGossipProcess(
            7, votes[7], function, assignment, (7, 3), GossipParams()
        )
        assert process._expected_keys(1) == frozenset({7, 3})


class TestWireDiscipline:
    def test_single_value_messages_fit_tight_bound(self):
        """Strict protocol text: every message is a couple of scalars."""
        votes, function, assignment = _figure1_world()
        params = GossipParams(batch_values=False)
        processes, engine = _run(
            votes, function, assignment, params,
            network=Network(max_message_size=40),
        )
        assert engine.network.stats.sent > 0  # nothing raised

    def test_batch_messages_fit_k_scaled_bound(self):
        votes, function, assignment = _figure1_world()
        # K=2 -> at most 2 values of (id + (sum, count)) + header.
        processes, engine = _run(
            votes, function, assignment, GossipParams(),
            network=Network(max_message_size=8 + 2 * (8 + 16)),
        )
        assert engine.network.stats.sent > 0
