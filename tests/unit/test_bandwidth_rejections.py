"""Bandwidth-cap rejections are counted, surfaced, and engine-paired.

Regression for the silent-rejection bug: ``Context.send`` returning
False (per-round bandwidth cap) used to vanish — no engine counter, no
metrics row, no trace report line — so a capped run looked merely
lossy.  Now the engine counts ``sends_rejected``, per-round metrics
carry ``messages_rejected``, RunResult/repro-run/1 export it, and the
phase report names the cap; the object and array engines must agree
exactly.
"""

import math

from repro.experiments.params import with_params
from repro.experiments.runner import run_once
from repro.obs.export import run_result_record
from repro.obs.report import render_phase_report

CAPPED = dict(
    n=32, seed=7, ucastl=0.0, pf=0.0, max_sends_per_round=1,
)


def _run(**overrides):
    return run_once(with_params(**{**CAPPED, **overrides}))


class TestRejectionAccounting:
    def test_tight_cap_rejects_and_counts(self):
        result = _run(engine="object")
        assert result.messages_rejected > 0
        record = run_result_record(result)
        assert record["messages_rejected"] == result.messages_rejected

    def test_uncapped_run_rejects_nothing(self):
        result = _run(engine="object", max_sends_per_round=None)
        assert result.messages_rejected == 0

    def test_object_and_array_engines_agree(self):
        object_result = _run(engine="object")
        array_result = _run(engine="array")
        assert object_result.messages_rejected > 0
        assert (
            object_result.messages_rejected
            == array_result.messages_rejected
        )
        # The cap must not silently change the outcome either.
        assert math.isclose(
            object_result.completeness, array_result.completeness
        )

    def test_engine_stats_mirror_network_stats(self):
        from repro.sim.engine import SimulationEngine
        from repro.sim.network import LossyNetwork
        from repro.sim.rng import RngRegistry

        network = LossyNetwork(ucastl=0.0, max_sends_per_round=1)
        engine = SimulationEngine(network, rngs=RngRegistry(seed=0))
        submitted = [
            engine._submit(0, 1, "a", 1),
            engine._submit(0, 2, "b", 1),
            engine._submit(0, 3, "c", 1),
        ]
        assert submitted == [True, False, False]
        assert engine.stats.sends_rejected == 2
        assert network.stats.rejected_bandwidth == 2


class TestRejectionSurfacing:
    def test_round_metrics_carry_rejections(self):
        from repro.obs.telemetry import RunTelemetry

        telemetry = RunTelemetry()
        result = run_once(with_params(**CAPPED), telemetry=telemetry)
        samples = telemetry.metrics.samples
        assert sum(s.messages_rejected for s in samples) == (
            result.messages_rejected
        )

    def test_phase_report_names_the_cap(self):
        config = with_params(**CAPPED, collect_telemetry=True)
        from repro.obs.telemetry import RunTelemetry

        telemetry = RunTelemetry()
        result = run_once(config, telemetry=telemetry)
        assert result.messages_rejected > 0
        report = render_phase_report(telemetry)
        assert "rejected by the bandwidth cap" in report

    def test_uncapped_phase_report_stays_quiet(self):
        from repro.obs.telemetry import RunTelemetry

        telemetry = RunTelemetry()
        run_once(
            with_params(n=32, seed=7, ucastl=0.0, pf=0.0,
                        collect_telemetry=True),
            telemetry=telemetry,
        )
        report = render_phase_report(telemetry)
        assert "rejected" not in report
