"""Guards against drift between the two layers of configuration.

``GossipParams`` (protocol-level) and ``RunConfig`` (experiment-level)
deliberately duplicate the protocol knobs; these tests fail if a default
changes in one place but not the other, or if the runner stops
forwarding a knob.
"""

import dataclasses

from repro.core.hierarchical_gossip import GossipParams
from repro.experiments.params import PAPER_DEFAULTS, RunConfig, with_params
from repro.experiments.runner import _build_processes
from repro.sim.rng import RngRegistry

MIRRORED_FIELDS = {
    "fanout_m",
    "rounds_factor_c",
    "rounds_per_phase",
    "early_bump",
    "batch_values",
    "independent_values",
    "prefer_coverage",
    "push_pull",
    "representative_fraction",
    "adaptive_deadlines",
    "final_retransmit",
}


class TestDefaultsMatch:
    def test_mirrored_defaults_identical(self):
        params = GossipParams()
        for field in MIRRORED_FIELDS:
            assert getattr(PAPER_DEFAULTS, field) == getattr(params, field), (
                f"default for {field} drifted between RunConfig and "
                f"GossipParams"
            )

    def test_runconfig_has_all_mirrored_fields(self):
        names = {f.name for f in dataclasses.fields(RunConfig)}
        assert MIRRORED_FIELDS <= names


class TestRunnerForwarding:
    def test_every_mirrored_field_reaches_the_process(self):
        overrides = {
            "fanout_m": 3,
            "rounds_factor_c": 1.7,
            "rounds_per_phase": 9,
            "early_bump": False,
            "batch_values": False,
            "independent_values": True,
            "prefer_coverage": False,
            "push_pull": True,
            "representative_fraction": 0.5,
            "adaptive_deadlines": True,
            "final_retransmit": 2,
        }
        config = with_params(n=16, **overrides)
        votes = {i: 1.0 for i in range(16)}
        processes, __ = _build_processes(config, votes, RngRegistry(0))
        params = processes[0].params
        for field, value in overrides.items():
            assert getattr(params, field) == value, field
