"""Unit tests for the baseline protocols (flood, centralized, leader
election, flat gossip)."""

import pytest

from repro.baselines.centralized import build_centralized_group
from repro.baselines.flat_gossip import build_flat_gossip_group
from repro.baselines.flood import build_flood_group
from repro.baselines.leader_election import build_leader_election_group
from repro.core.aggregates import AverageAggregate
from repro.core.gridbox import GridAssignment, GridBoxHierarchy
from repro.core.hashing import FairHash, StaticHash
from repro.core.protocol import measure_completeness
from repro.sim.engine import SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.network import LossyNetwork, Network
from repro.sim.rng import RngRegistry

VOTES = {i: float(i) for i in range(16)}
TRUE_AVG = sum(VOTES.values()) / len(VOTES)


def _run(processes, network=None, failures=None, seed=0, max_rounds=500):
    engine = SimulationEngine(
        network=network or Network(max_message_size=1 << 20),
        failure_model=failures,
        rngs=RngRegistry(seed),
        max_rounds=max_rounds,
    )
    engine.add_processes(processes)
    engine.run()
    return engine


class TestFlood:
    def test_lossless_is_exact_everywhere(self):
        function = AverageAggregate()
        processes = build_flood_group(VOTES, function)
        _run(processes)
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(TRUE_AVG)

    def test_message_complexity_is_quadratic(self):
        processes = build_flood_group(VOTES, AverageAggregate())
        engine = _run(processes)
        n = len(VOTES)
        assert engine.network.stats.sent == n * (n - 1)

    def test_lossy_completeness_tracks_delivery_rate(self):
        function = AverageAggregate()
        processes = build_flood_group(
            {i: 1.0 for i in range(120)}, function
        )
        engine = _run(processes, network=LossyNetwork(ucastl=0.5,
                                                      max_message_size=1 << 20))
        report = measure_completeness(processes, group_size=120)
        # Each foreign vote arrives with p = 0.5 exactly once.
        assert 0.42 < report.mean_completeness < 0.58

    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            build_flood_group(VOTES, AverageAggregate(), fanout=0)


class TestCentralized:
    def test_lossless_single_leader_exact(self):
        function = AverageAggregate()
        processes = build_centralized_group(VOTES, function)
        _run(processes)
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(TRUE_AVG)

    def test_message_complexity_is_linear(self):
        processes = build_centralized_group(VOTES, AverageAggregate())
        engine = _run(processes)
        n = len(VOTES)
        # N-1 reports up + N-1 disseminations down.
        assert engine.network.stats.sent == 2 * (n - 1)

    def test_leader_crash_loses_everything(self):
        """The paper's core criticism: one crash, no result anywhere."""
        function = AverageAggregate()
        processes = build_centralized_group(VOTES, function)
        _run(processes, failures=ScheduledFailures(crash_at={1: [0]}))
        report = measure_completeness(processes, group_size=len(VOTES))
        # Survivors fall back to their own vote only.
        assert report.mean_completeness <= 2 / len(VOTES)

    def test_committee_survives_one_crash(self):
        function = AverageAggregate()
        processes = build_centralized_group(
            VOTES, function, committee_size=2
        )
        _run(processes, failures=ScheduledFailures(crash_at={1: [0]}))
        report = measure_completeness(processes, group_size=len(VOTES))
        assert report.mean_completeness > 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            build_centralized_group(VOTES, AverageAggregate(),
                                    committee_size=0)


def _assignment(votes, k=2, salt=0):
    hierarchy = GridBoxHierarchy(len(votes), k)
    return GridAssignment(hierarchy, votes, FairHash(salt=salt))


class TestLeaderElection:
    def test_lossless_exact_everywhere(self):
        function = AverageAggregate()
        assignment = _assignment(VOTES)
        processes = build_leader_election_group(VOTES, function, assignment)
        _run(processes)
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(TRUE_AVG)
            assert process.result.members == frozenset(VOTES)

    def test_committees_are_upward_nested(self):
        assignment = _assignment(VOTES)
        processes = build_leader_election_group(
            VOTES, AverageAggregate(), assignment, committee_size=2
        )
        for process in processes:
            # leader at height h implies leader at all lower heights
            for phase in range(1, process.leader_height + 1):
                assert process.node_id in process._committee(phase)

    def test_root_leader_crash_loses_subtree(self):
        """Crash the root leader right after the top aggregation phase:
        members outside its dissemination path keep partial results."""
        function = AverageAggregate()
        assignment = _assignment(VOTES)
        processes = build_leader_election_group(VOTES, function, assignment)
        root_leader = max(processes, key=lambda p: p.leader_height)
        crash_round = processes[0].rounds_per_phase * (
            assignment.hierarchy.num_phases
        )
        engine = _run(
            processes,
            failures=ScheduledFailures(
                crash_at={crash_round: [root_leader.node_id]}
            ),
        )
        report = measure_completeness(processes, group_size=len(VOTES))
        assert report.mean_completeness < 1.0

    def test_single_message_loss_loses_whole_subtree(self):
        """No retransmission: deterministic loss of all phase-1 reports
        leaves leaders with only their own lineage."""
        function = AverageAggregate()
        assignment = _assignment(VOTES)
        processes = build_leader_election_group(VOTES, function, assignment)
        engine = _run(processes, network=LossyNetwork(
            ucastl=1.0, max_message_size=1 << 20))
        report = measure_completeness(processes, group_size=len(VOTES))
        assert report.mean_completeness <= 2 / len(VOTES)

    def test_validation(self):
        assignment = _assignment(VOTES)
        with pytest.raises(ValueError):
            build_leader_election_group(
                VOTES, AverageAggregate(), assignment, committee_size=0
            )
        with pytest.raises(ValueError):
            build_leader_election_group(
                VOTES, AverageAggregate(), assignment, rounds_per_phase=1
            )


class TestFlatGossip:
    def test_lossless_converges_with_enough_rounds(self):
        function = AverageAggregate()
        processes = build_flat_gossip_group(
            VOTES, function, total_rounds=60
        )
        _run(processes)
        for process in processes:
            assert process.result.members == frozenset(VOTES)

    def test_full_state_messages_are_large(self):
        function = AverageAggregate()
        processes = build_flat_gossip_group(
            VOTES, function, total_rounds=20, full_state=True
        )
        engine = _run(processes)
        # Late-round messages carry ~N votes: mean size far above one vote.
        mean_size = engine.network.stats.bytes_sent / engine.network.stats.sent
        assert mean_size > 5 * 24

    def test_single_value_messages_are_constant_size(self):
        function = AverageAggregate()
        processes = build_flat_gossip_group(
            VOTES, function, total_rounds=20, full_state=False
        )
        engine = _run(processes, network=Network(max_message_size=40))
        assert engine.network.stats.sent > 0

    def test_round_budget_respected(self):
        processes = build_flat_gossip_group(
            VOTES, AverageAggregate(), total_rounds=7
        )
        engine = _run(processes)
        assert engine.round == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            build_flat_gossip_group(VOTES, AverageAggregate(), total_rounds=0)
