"""Unit tests for the per-round metrics collection."""

from repro.sim.engine import Process, SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.metrics import RoundMetrics
from repro.sim.network import LossyNetwork, Network
from repro.sim.rng import RngRegistry


class Pinger(Process):
    """Sends ``rate`` messages per round for ``rounds`` rounds."""

    def __init__(self, node_id, peer, rate=1, rounds=4, size=10):
        super().__init__(node_id)
        self.peer = peer
        self.rate = rate
        self.rounds = rounds
        self.size = size

    def on_round(self, ctx):
        for __ in range(self.rate):
            ctx.send(self.peer, "ping", size=self.size)
        if ctx.round + 1 >= self.rounds:
            ctx.terminate()


def _run(processes, network=None, failures=None):
    metrics = RoundMetrics()
    engine = SimulationEngine(
        network=network or Network(max_message_size=1 << 20),
        failure_model=failures,
        rngs=RngRegistry(0),
        max_rounds=100,
        metrics=metrics,
    )
    engine.add_processes(processes)
    engine.run()
    return metrics


class TestRoundMetrics:
    def test_one_sample_per_round(self):
        metrics = _run([Pinger(0, 1, rounds=5), Pinger(1, 0, rounds=5)])
        assert len(metrics.samples) == 5
        assert [s.round for s in metrics.samples] == list(range(5))

    def test_messages_per_round_are_deltas(self):
        metrics = _run([Pinger(0, 1, rate=3), Pinger(1, 0, rate=2)])
        assert metrics.messages_per_round() == [5, 5, 5, 5]

    def test_peak_member_rate(self):
        metrics = _run([Pinger(0, 1, rate=3), Pinger(1, 0, rate=2)])
        assert metrics.peak_member_rate() == 3

    def test_mean_bytes_per_message(self):
        metrics = _run([Pinger(0, 1, size=10), Pinger(1, 0, size=30)])
        assert metrics.mean_bytes_per_message() == 20.0

    def test_live_members_track_crashes(self):
        metrics = _run(
            [Pinger(0, 1, rounds=6), Pinger(1, 0, rounds=6)],
            failures=ScheduledFailures(crash_at={3: [1]}),
        )
        live = [s.live_members for s in metrics.samples]
        assert live[0] == 2
        assert live[-1] == 1

    def test_drops_counted(self):
        metrics = _run(
            [Pinger(0, 1), Pinger(1, 0)],
            network=LossyNetwork(1.0, max_message_size=1 << 20),
        )
        assert sum(s.messages_dropped for s in metrics.samples) == 8

    def test_render_has_bars(self):
        metrics = _run([Pinger(0, 1), Pinger(1, 0)])
        text = metrics.render(width=10)
        assert "round" in text
        assert "#" in text

    def test_empty_render(self):
        assert "no rounds" in RoundMetrics().render()

    def test_zero_messages_mean(self):
        assert RoundMetrics().mean_bytes_per_message() == 0.0
        assert RoundMetrics().peak_member_rate() == 0
