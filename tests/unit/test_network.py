"""Unit tests for the unreliable network models."""

import pytest

from repro.sim.network import (
    LossyNetwork,
    Message,
    MessageTooLarge,
    Network,
    PartitionedNetwork,
    TopologyNetwork,
)
from repro.sim.rng import RngRegistry


def _send(network, rngs, src=0, dest=1, size=1, sent_round=0):
    return network.plan_delivery(
        Message(src=src, dest=dest, payload="x", size=size,
                sent_round=sent_round),
        rngs,
    )


class TestBaseNetwork:
    def test_lossless_delivers_next_round(self):
        network = Network()
        outcome = _send(network, RngRegistry(0), sent_round=5)
        assert outcome == 6

    def test_latency_configurable(self):
        network = Network(latency_rounds=3)
        assert _send(network, RngRegistry(0), sent_round=2) == 5

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            Network(latency_rounds=0)

    def test_oversized_message_raises(self):
        network = Network(max_message_size=8)
        with pytest.raises(MessageTooLarge):
            _send(network, RngRegistry(0), size=9)

    def test_bandwidth_cap_rejects_excess(self):
        network = Network(max_sends_per_round=2)
        rngs = RngRegistry(0)
        assert _send(network, rngs) is not Network.REJECTED
        assert _send(network, rngs) is not Network.REJECTED
        assert _send(network, rngs) is Network.REJECTED
        assert network.stats.rejected_bandwidth == 1

    def test_bandwidth_cap_is_per_sender(self):
        network = Network(max_sends_per_round=1)
        rngs = RngRegistry(0)
        assert _send(network, rngs, src=0) is not Network.REJECTED
        assert _send(network, rngs, src=1) is not Network.REJECTED

    def test_bandwidth_resets_each_round(self):
        network = Network(max_sends_per_round=1)
        rngs = RngRegistry(0)
        _send(network, rngs)
        network.begin_round(1)
        assert _send(network, rngs, sent_round=1) is not Network.REJECTED

    def test_stats_accumulate(self):
        network = Network()
        rngs = RngRegistry(0)
        _send(network, rngs, size=4)
        _send(network, rngs, size=6)
        assert network.stats.sent == 2
        assert network.stats.bytes_sent == 10
        assert network.stats.dropped == 0


class TestLossyNetwork:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            LossyNetwork(ucastl=1.5)

    def test_zero_loss_never_drops(self):
        network = LossyNetwork(ucastl=0.0)
        rngs = RngRegistry(1)
        for __ in range(100):
            assert _send(network, rngs) is not None

    def test_full_loss_always_drops(self):
        network = LossyNetwork(ucastl=1.0)
        rngs = RngRegistry(1)
        for __ in range(50):
            assert _send(network, rngs) is None
        assert network.stats.dropped == 50

    def test_loss_rate_statistics(self):
        network = LossyNetwork(ucastl=0.3)
        rngs = RngRegistry(2)
        outcomes = [_send(network, rngs) for __ in range(20_000)]
        dropped = sum(1 for outcome in outcomes if outcome is None)
        assert 0.27 < dropped / 20_000 < 0.33


class TestPartitionedNetwork:
    def _network(self, partl=1.0, ucastl=0.0):
        return PartitionedNetwork(
            partition_of=lambda node: 0 if node < 10 else 1,
            partl=partl,
            ucastl=ucastl,
        )

    def test_cross_partition_uses_partl(self):
        network = self._network(partl=1.0, ucastl=0.0)
        rngs = RngRegistry(0)
        assert _send(network, rngs, src=1, dest=2) is not None  # same side
        assert _send(network, rngs, src=1, dest=15) is None     # crossing
        assert network.stats.dropped_cross_partition == 1

    def test_mapping_accepted(self):
        network = PartitionedNetwork(
            partition_of={0: 0, 1: 1}, partl=1.0, ucastl=0.0
        )
        rngs = RngRegistry(0)
        assert _send(network, rngs, src=0, dest=1) is None

    def test_partl_validated(self):
        with pytest.raises(ValueError):
            self._network(partl=-0.1)

    def test_cross_partition_rate(self):
        network = self._network(partl=0.6, ucastl=0.0)
        rngs = RngRegistry(3)
        drops = sum(
            1 for __ in range(10_000)
            if _send(network, rngs, src=0, dest=11) is None
        )
        assert 0.56 < drops / 10_000 < 0.64


class TestPartitionHealing:
    def _network(self, heal_at):
        return PartitionedNetwork(
            partition_of=lambda node: 0 if node < 10 else 1,
            partl=1.0,
            ucastl=0.0,
            heal_at=heal_at,
        )

    def test_heal_at_validated(self):
        with pytest.raises(ValueError):
            self._network(heal_at=-1)

    def test_never_heals_by_default(self):
        network = self._network(heal_at=None)
        rngs = RngRegistry(0)
        for round_number in range(100):
            network.begin_round(round_number)
        assert not network.healed
        assert _send(network, rngs, src=0, dest=11) is None

    def test_partition_drops_until_heal_round(self):
        network = self._network(heal_at=5)
        rngs = RngRegistry(0)
        network.begin_round(4)
        assert not network.healed
        assert _send(network, rngs, src=0, dest=11, sent_round=4) is None
        network.begin_round(5)
        assert network.healed
        assert _send(network, rngs, src=0, dest=11, sent_round=5) == 6

    def test_heal_is_permanent(self):
        network = self._network(heal_at=3)
        rngs = RngRegistry(0)
        for round_number in range(6):
            network.begin_round(round_number)
        assert _send(network, rngs, src=0, dest=11, sent_round=5) == 6

    def test_boundary_drop_counter_stops_at_heal(self):
        network = self._network(heal_at=2)
        rngs = RngRegistry(0)
        network.begin_round(0)
        assert _send(network, rngs, src=0, dest=11, sent_round=0) is None
        assert network.stats.dropped_cross_partition == 1
        network.begin_round(2)
        _send(network, rngs, src=0, dest=11, sent_round=2)
        assert network.stats.dropped_cross_partition == 1


class TestTopologyNetwork:
    def _hops(self, src, dest):
        table = {(0, 1): 1, (0, 2): 3, (0, 9): None}
        return table.get((src, dest), 1)

    def test_latency_tracks_hops(self):
        network = TopologyNetwork(hops=self._hops, hop_loss=0.0)
        rngs = RngRegistry(0)
        assert _send(network, rngs, src=0, dest=1, sent_round=0) == 1
        assert _send(network, rngs, src=0, dest=2, sent_round=0) == 3

    def test_unroutable_always_lost(self):
        network = TopologyNetwork(hops=self._hops, hop_loss=0.0)
        rngs = RngRegistry(0)
        assert _send(network, rngs, src=0, dest=9) is None

    def test_loss_compounds_with_hops(self):
        network = TopologyNetwork(hops=self._hops, hop_loss=0.2)
        one_hop = Message(src=0, dest=1, payload="x")
        three_hops = Message(src=0, dest=2, payload="x")
        assert network.loss_probability(one_hop) == pytest.approx(0.2)
        assert network.loss_probability(three_hops) == pytest.approx(
            1 - 0.8**3
        )

    def test_self_message_is_free(self):
        network = TopologyNetwork(hops=self._hops, hop_loss=0.9)
        message = Message(src=5, dest=5, payload="x")
        assert network.loss_probability(message) == pytest.approx(0.0)

    def test_hop_loss_validated(self):
        with pytest.raises(ValueError):
            TopologyNetwork(hops=self._hops, hop_loss=2.0)
