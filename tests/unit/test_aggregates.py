"""Unit tests for the composable aggregate algebra."""

import math

import pytest

from repro.core.aggregates import (
    AGGREGATE_REGISTRY,
    AllAggregate,
    AnyAggregate,
    AverageAggregate,
    BoundsAggregate,
    CountAggregate,
    DoubleCountError,
    HistogramAggregate,
    MaxAggregate,
    MeanVarianceAggregate,
    MinAggregate,
    SumAggregate,
    get_aggregate,
)


class TestLiftAndFinalize:
    def test_sum_single_vote(self):
        f = SumAggregate()
        state = f.lift(7, 3.5)
        assert f.finalize(state) == 3.5
        assert state.members == frozenset({7})

    def test_count_ignores_vote_value(self):
        f = CountAggregate()
        assert f.finalize(f.lift(1, 123.0)) == 1.0

    def test_average_of_one(self):
        f = AverageAggregate()
        assert f.finalize(f.lift(0, 42.0)) == 42.0

    def test_min_max_single(self):
        assert MinAggregate().finalize(MinAggregate().lift(0, -3.0)) == -3.0
        assert MaxAggregate().finalize(MaxAggregate().lift(0, -3.0)) == -3.0

    def test_bounds_single_width_zero(self):
        f = BoundsAggregate()
        state = f.lift(0, 5.0)
        assert f.finalize(state) == 0.0
        assert BoundsAggregate.bounds(state) == (5.0, 5.0)

    def test_mean_variance_single(self):
        f = MeanVarianceAggregate()
        state = f.lift(0, 9.0)
        assert f.finalize(state) == 0.0
        assert MeanVarianceAggregate.mean(state) == 9.0


class TestMerge:
    def test_average_merge_matches_direct(self):
        f = AverageAggregate()
        votes = {i: float(i * i) for i in range(10)}
        state = f.over(votes)
        expected = sum(votes.values()) / len(votes)
        assert f.finalize(state) == pytest.approx(expected)
        assert state.members == frozenset(votes)

    def test_merge_rejects_overlap(self):
        f = SumAggregate()
        a = f.lift(1, 2.0)
        b = f.lift(1, 2.0)
        with pytest.raises(DoubleCountError):
            f.merge(a, b)

    def test_merge_overlap_message_names_members(self):
        f = SumAggregate()
        a = f.merge(f.lift(1, 1.0), f.lift(2, 1.0))
        b = f.lift(2, 1.0)
        with pytest.raises(DoubleCountError, match="2"):
            f.merge(a, b)

    def test_merge_all_requires_states(self):
        with pytest.raises(ValueError):
            SumAggregate().merge_all([])

    def test_merge_all_single_passthrough(self):
        f = SumAggregate()
        state = f.lift(0, 4.0)
        assert f.merge_all([state]) is state

    def test_min_max_merge(self):
        votes = {0: 5.0, 1: -2.0, 2: 9.0}
        assert MinAggregate().finalize(MinAggregate().over(votes)) == -2.0
        assert MaxAggregate().finalize(MaxAggregate().over(votes)) == 9.0

    def test_mean_variance_matches_population_variance(self):
        f = MeanVarianceAggregate()
        values = [1.0, 4.0, 9.0, 16.0, 25.0]
        votes = dict(enumerate(values))
        state = f.over(votes)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert f.finalize(state) == pytest.approx(variance)
        assert MeanVarianceAggregate.mean(state) == pytest.approx(mean)

    def test_mean_variance_merge_order_independent(self):
        f = MeanVarianceAggregate()
        votes = {i: float(i % 13) * 1e6 + 1e-3 for i in range(50)}
        states = [f.lift(m, v) for m, v in votes.items()]
        forward = states[0]
        for state in states[1:]:
            forward = f.merge(forward, state)
        backward = states[-1]
        for state in reversed(states[:-1]):
            backward = f.merge(backward, state)
        assert f.finalize(forward) == pytest.approx(
            f.finalize(backward), rel=1e-9
        )


class TestBooleanAggregates:
    def test_any(self):
        f = AnyAggregate()
        assert f.finalize(f.over({0: 0.0, 1: 0.0})) == 0.0
        assert f.finalize(f.over({0: 0.0, 1: 1.0})) == 1.0

    def test_all(self):
        f = AllAggregate()
        assert f.finalize(f.over({0: 1.0, 1: 1.0})) == 1.0
        assert f.finalize(f.over({0: 1.0, 1: 0.0})) == 0.0


class TestHistogram:
    def test_counts_and_mode(self):
        f = HistogramAggregate(low=0.0, high=10.0, bins=5)
        votes = {0: 1.0, 1: 1.5, 2: 9.0, 3: 3.0}
        state = f.over(votes)
        assert HistogramAggregate.counts(state) == (2, 1, 0, 0, 1)
        assert f.finalize(state) == 0.0  # bin 0 is the fullest

    def test_out_of_range_clamps(self):
        f = HistogramAggregate(low=0.0, high=1.0, bins=2)
        state = f.over({0: -5.0, 1: 99.0})
        assert HistogramAggregate.counts(state) == (1, 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HistogramAggregate(low=0.0, high=1.0, bins=0)
        with pytest.raises(ValueError):
            HistogramAggregate(low=1.0, high=1.0)


class TestWireSize:
    def test_average_payload_is_two_scalars(self):
        state = AverageAggregate().lift(0, 1.0)
        assert state.wire_size() == 16

    def test_sum_payload_is_one_scalar(self):
        state = SumAggregate().lift(0, 1.0)
        assert state.wire_size() == 8

    def test_wire_size_ignores_member_bookkeeping(self):
        f = AverageAggregate()
        small = f.lift(0, 1.0)
        big = f.over({i: 1.0 for i in range(100)})
        assert small.wire_size() == big.wire_size()


class TestRegistry:
    def test_all_registered_names_instantiate(self):
        for name in AGGREGATE_REGISTRY:
            function = get_aggregate(name)
            assert function.name == name

    def test_histogram_via_registry(self):
        f = get_aggregate("histogram", low=0.0, high=1.0, bins=4)
        assert isinstance(f, HistogramAggregate)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="average"):
            get_aggregate("median")


class TestComposability:
    """The paper's defining property: f(W1 u W2) = g(f(W1), f(W2))."""

    @pytest.mark.parametrize("name", sorted(AGGREGATE_REGISTRY))
    def test_split_merge_equals_direct(self, name):
        f = get_aggregate(name)
        votes = {i: math.sin(i) * 10 for i in range(20)}
        left = {m: v for m, v in votes.items() if m < 11}
        right = {m: v for m, v in votes.items() if m >= 11}
        combined = f.merge(f.over(left), f.over(right))
        direct = f.over(votes)
        assert f.finalize(combined) == pytest.approx(f.finalize(direct))
        assert combined.members == direct.members
