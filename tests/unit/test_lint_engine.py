"""Engine-level tests: pragmas, suppression files, discovery, reports.

The rule logic itself is covered in ``test_lint_rules.py``; here the
subject is the machinery around it — how violations are silenced,
how files are found, and the exact shape of the text/JSON reports the
CI gate consumes.
"""

import json
import textwrap

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    LintEngine,
    Suppressions,
    Violation,
    render_json,
    render_text,
)
from repro.lint.engine import parse_pragmas

RNG_SOURCE = textwrap.dedent(
    """
    import numpy as np

    def f(seed):
        return np.random.default_rng(seed)
    """
)


def _violation(code="REP001", path="src/repro/sim/x.py", line=5):
    return Violation(
        code=code, path=path, line=line, col=4, message="test violation"
    )


class TestPragmas:
    def test_bare_pragma_suppresses_every_code(self):
        pragmas = parse_pragmas("x = 1  # repro-lint: ok\n")
        assert pragmas == {1: None}

    def test_coded_pragma_lists_codes(self):
        pragmas = parse_pragmas("x = 1  # repro-lint: ok[REP001, REP004]\n")
        assert pragmas == {1: frozenset({"REP001", "REP004"})}

    def test_line_numbers_are_one_based(self):
        pragmas = parse_pragmas("a = 1\nb = 2  # repro-lint: ok[REP005]\n")
        assert set(pragmas) == {2}

    def test_coded_pragma_silences_only_named_rule(self):
        source = RNG_SOURCE.replace(
            "default_rng(seed)",
            "default_rng(seed)  # repro-lint: ok[REP002]",
        )
        result = LintEngine().check_source(source, "src/repro/sim/x.py")
        assert [v.code for v in result.violations] == ["REP001"]
        assert result.suppressed == 0

    def test_matching_pragma_counts_as_suppressed(self):
        source = RNG_SOURCE.replace(
            "default_rng(seed)",
            "default_rng(seed)  # repro-lint: ok[REP001]",
        )
        result = LintEngine().check_source(source, "src/repro/sim/x.py")
        assert result.violations == []
        assert result.suppressed == 1


class TestSuppressions:
    def test_load_parses_entries_and_ignores_comments(self, tmp_path):
        path = tmp_path / ".reprolint"
        path.write_text(
            "# baseline\n"
            "\n"
            "REP001 legacy/*.py  # trailing comment\n"
            "* generated/schema.py\n"
        )
        suppressions = Suppressions.load(path)
        assert suppressions.entries == [
            ("REP001", "legacy/*.py"),
            ("*", "generated/schema.py"),
        ]

    @pytest.mark.parametrize(
        "line", ["REP001", "BADCODE foo.py", "rep001 foo.py"]
    )
    def test_load_rejects_malformed_lines(self, tmp_path, line):
        path = tmp_path / ".reprolint"
        path.write_text(line + "\n")
        with pytest.raises(ValueError):
            Suppressions.load(path)

    def test_matches_code_and_glob(self):
        suppressions = Suppressions([("REP001", "legacy/*.py")])
        assert suppressions.matches(_violation(path="legacy/old.py"))
        assert suppressions.matches(_violation(path="src/legacy/old.py"))
        assert not suppressions.matches(_violation(path="src/new.py"))
        assert not suppressions.matches(
            _violation(code="REP002", path="legacy/old.py")
        )

    def test_star_code_matches_every_rule(self):
        suppressions = Suppressions([("*", "legacy/*.py")])
        assert suppressions.matches(_violation(code="REP005",
                                               path="legacy/old.py"))

    def test_engine_counts_file_suppressions(self):
        engine = LintEngine(
            suppressions=Suppressions([("REP001", "src/repro/sim/x.py")])
        )
        result = engine.check_source(RNG_SOURCE, "src/repro/sim/x.py")
        assert result.violations == []
        assert result.suppressed == 1
        assert result.clean


class TestDiscovery:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            LintEngine.discover([tmp_path / "nope"])

    def test_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "mod.py").write_text("x = 1\n")
        found = LintEngine.discover([tmp_path])
        assert found == [tmp_path / "pkg" / "mod.py"]

    def test_explicit_file_passes_through(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert LintEngine.discover([target]) == [target]


class TestParseErrors:
    def test_unparsable_file_reports_rep000(self):
        result = LintEngine().check_source("def broken(:\n", "bad.py")
        assert [v.code for v in result.violations] == ["REP000"]
        assert not result.clean


class TestReports:
    def test_text_report_lines_and_footer(self):
        violation = _violation()
        text = render_text([violation], checked_files=3, suppressed=2)
        assert violation.render() in text
        assert text.endswith("1 violation(s) in 3 file(s), 2 suppressed")

    def test_json_report_schema(self):
        violations = [_violation(), _violation(code="REP004", line=9)]
        document = json.loads(render_json(violations, 7, suppressed=1))
        assert document["schema"] == JSON_SCHEMA_VERSION == "repro-lint/2"
        assert document["checked_files"] == 7
        assert document["suppressed"] == 1
        assert document["counts"] == {"REP001": 1, "REP004": 1}
        assert document["violations"][0] == {
            "code": "REP001",
            "path": "src/repro/sim/x.py",
            "line": 5,
            "col": 4,
            "message": "test violation",
        }

    def test_violation_render_is_editor_friendly(self):
        assert _violation().render() == (
            "src/repro/sim/x.py:5:4: REP001 test violation"
        )
