"""Unit tests for the representative-gossiper optimization."""

import pytest

from repro.core import (
    FairHash,
    GossipParams,
    GridAssignment,
    GridBoxHierarchy,
    build_hierarchical_gossip_group,
    get_aggregate,
    measure_completeness,
)
from repro.sim import LossyNetwork, Network, RngRegistry, SimulationEngine


def _run(fraction, n=128, ucastl=0.0, seed=1):
    votes = {i: float(i) for i in range(n)}
    assignment = GridAssignment(
        GridBoxHierarchy(n, 4), votes, FairHash(0)
    )
    processes = build_hierarchical_gossip_group(
        votes, get_aggregate("average"), assignment,
        GossipParams(representative_fraction=fraction),
    )
    engine = SimulationEngine(
        network=LossyNetwork(ucastl, max_message_size=1 << 20),
        rngs=RngRegistry(seed),
        max_rounds=300,
    )
    engine.add_processes(processes)
    engine.run()
    report = measure_completeness(processes, n)
    return report.mean_completeness, engine.network.stats.sent, processes


class TestRepresentatives:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            GossipParams(representative_fraction=0.0)
        with pytest.raises(ValueError):
            GossipParams(representative_fraction=1.5)

    def test_full_fraction_everyone_gossips(self):
        __, full_messages, __ = _run(1.0)
        __, half_messages, __ = _run(0.5)
        assert half_messages < full_messages

    def test_phase1_always_gossips(self):
        """Votes exist nowhere else, so phase 1 ignores the fraction."""
        votes = {i: float(i) for i in range(16)}
        assignment = GridAssignment(
            GridBoxHierarchy(16, 4), votes, FairHash(0)
        )
        processes = build_hierarchical_gossip_group(
            votes, get_aggregate("average"), assignment,
            GossipParams(representative_fraction=0.01),
        )
        for process in processes:
            process.phase = 1
            assert process._is_representative()

    def test_role_deterministic(self):
        votes = {i: float(i) for i in range(32)}
        assignment = GridAssignment(
            GridBoxHierarchy(32, 4), votes, FairHash(0)
        )
        params = GossipParams(representative_fraction=0.5)
        group_a = build_hierarchical_gossip_group(
            votes, get_aggregate("average"), assignment, params
        )
        group_b = build_hierarchical_gossip_group(
            votes, get_aggregate("average"), assignment, params
        )
        for a, b in zip(group_a, group_b):
            a.phase = b.phase = 2
            assert a._is_representative() == b._is_representative()

    def test_half_representatives_keep_most_completeness_lossless(self):
        completeness, __, __ = _run(0.5, ucastl=0.0)
        assert completeness > 0.85

    def test_everyone_still_composes(self):
        """Non-representatives listen and still produce estimates."""
        __, __, processes = _run(0.3)
        assert all(p.result is not None for p in processes)
