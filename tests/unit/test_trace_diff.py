"""Unit tests for ``repro trace --diff`` (the regression-triage tool).

Synthetic :class:`TraceDocument` pairs pin the divergence semantics —
first differing phase event per member, earliest-round ordering,
end-of-stream handling, round-counter drift, config/result drift — and
the renderer's deterministic text.  The CLI surface is covered in
``tests/integration/test_trace_cli.py``.
"""

from repro.core.observe import PhaseEvent
from repro.obs.diff import diff_traces, render_diff
from repro.obs.export import TraceDocument
from repro.sim.metrics import RoundSample


def _event(member, round_number, kind="phase_enter", **kwargs):
    return PhaseEvent(
        kind=kind, member=member, round=round_number, phase=1, **kwargs
    )


def _sample(round_number, sent=10):
    return RoundSample(
        round=round_number, messages_sent=sent, bytes_sent=sent * 100,
        messages_dropped=0, live_members=8, active_members=8,
        max_sends_by_member=2,
    )


def _document(events=(), rounds=(), config=None, result=None):
    return TraceDocument(
        header={"config": config or {}},
        phase_events=list(events),
        rounds=list(rounds),
        result=result,
    )


class TestDiffTraces:
    def test_identical_traces(self):
        events = [_event(0, 1), _event(1, 1)]
        diff = diff_traces(_document(events), _document(list(events)))
        assert diff.identical
        assert diff.members_compared == 2

    def test_first_differing_event_wins(self):
        a = [_event(0, 1), _event(0, 2, "bump_up_early")]
        b = [_event(0, 1), _event(0, 2, "bump_up_timeout")]
        [divergence] = diff_traces(_document(a), _document(b)).members
        assert divergence.member == 0
        assert divergence.index == 1
        assert divergence.a.kind == "bump_up_early"
        assert divergence.b.kind == "bump_up_timeout"
        assert divergence.round == 2

    def test_stream_ending_early_is_a_divergence(self):
        a = [_event(0, 1), _event(0, 2)]
        b = [_event(0, 1)]
        [divergence] = diff_traces(_document(a), _document(b)).members
        assert divergence.index == 1
        assert divergence.b is None
        assert divergence.round == 2

    def test_member_only_in_one_trace(self):
        diff = diff_traces(_document([_event(7, 3)]), _document([]))
        [divergence] = diff.members
        assert divergence.member == 7
        assert divergence.index == 0
        assert divergence.b is None

    def test_members_sorted_by_divergence_round(self):
        # Member 5 diverges at round 1, member 2 at round 4 — the
        # earlier drift (the likelier root cause) must lead.
        a = [_event(2, 4), _event(5, 1, "bump_up_early")]
        b = [_event(2, 4, "finalize"), _event(5, 1, "bump_up_timeout")]
        diff = diff_traces(_document(a), _document(b))
        assert [d.member for d in diff.members] == [5, 2]

    def test_missing_and_coverage_participate_in_the_key(self):
        a = [_event(0, 1, "finalize", coverage=0.5)]
        b = [_event(0, 1, "finalize", coverage=1.0)]
        assert diff_traces(_document(a), _document(b)).members

    def test_round_counter_drift(self):
        a = _document(rounds=[_sample(0), _sample(1, sent=10)])
        b = _document(rounds=[_sample(0), _sample(1, sent=12)])
        diff = diff_traces(a, b)
        assert diff.round_divergence == (1, "messages_sent", 10, 12)

    def test_round_sample_count_mismatch(self):
        a = _document(rounds=[_sample(0), _sample(1)])
        b = _document(rounds=[_sample(0)])
        diff = diff_traces(a, b)
        assert diff.round_divergence == (1, "samples", 2, 1)

    def test_config_and_result_drift(self):
        a = _document(config={"seed": 0, "n": 64}, result={"rounds": 9})
        b = _document(config={"seed": 1, "n": 64}, result={"rounds": 11})
        diff = diff_traces(a, b)
        assert diff.config_diffs == ["seed: a=0 b=1"]
        assert diff.result_diffs == ["rounds: a=9 b=11"]


class TestRenderDiff:
    def test_identical_report(self):
        diff = diff_traces(_document([_event(0, 1)]),
                           _document([_event(0, 1)]))
        text = render_diff(diff, "x.jsonl", "y.jsonl")
        assert text.splitlines() == [
            "trace diff: x.jsonl (a) vs y.jsonl (b)",
            "traces are identical (1 member(s) compared)",
        ]

    def test_divergent_report_is_deterministic(self):
        a = _document(
            [_event(m, 1) for m in range(15)],
            config={"seed": 0},
        )
        b = _document(
            [_event(m, 1, "finalize") for m in range(15)],
            config={"seed": 1},
        )
        first = render_diff(diff_traces(a, b), "a", "b")
        second = render_diff(diff_traces(a, b), "a", "b")
        assert first == second
        assert "members: 15 of 15 diverge" in first
        assert "... and 5 more member(s)" in first

    def test_end_of_stream_rendering(self):
        diff = diff_traces(_document([_event(0, 1)]), _document([]))
        assert "<stream ended>" in render_diff(diff, "a", "b")
