"""Wire codec round-trips and hostile-input fuzz (repro.net.codec).

The decode contract is absolute: any byte string either round-trips to
a valid wire message or raises CodecError — never any other exception,
never a crash.  A live node feeds every received datagram through
decode, so this property is what keeps a hostile or corrupted packet
from killing a group member.
"""

import json

import pytest

from repro.core.aggregates import AggregateState
from repro.core.gridbox import SubtreeId
from repro.core.messages import GossipBatch, GossipValue
from repro.net.codec import (
    MAGIC,
    WIRE_VERSION,
    CodecError,
    Gossip,
    Join,
    Ping,
    Pong,
    Welcome,
    decode,
    encode,
)


def _state(payload, members):
    return AggregateState(payload=payload, members=frozenset(members))


ROUND_TRIP_MESSAGES = [
    Join(node_id=3, host="127.0.0.1", port=9301),
    Welcome(book={0: ("127.0.0.1", 9300), 7: ("10.0.0.2", 1024)}),
    Ping(src=5),
    Pong(src=2),
    Gossip(
        src=1, sent_round=4,
        payload=GossipValue(
            phase=1, key=6, state=_state(42.5, {6}),
        ),
    ),
    Gossip(
        src=9, sent_round=17,
        payload=GossipValue(
            phase=3, key=SubtreeId(2, 5),
            state=_state((10.0, 4.0), {1, 2, 3}),
        ),
    ),
    Gossip(
        src=0, sent_round=0,
        payload=GossipBatch(
            phase=2,
            entries=(
                (SubtreeId(1, 0), _state((3.5, 2.0), {0, 1})),
                (SubtreeId(1, 1), _state(((1.0, 2.0), (3.0, 4.0)), {2})),
            ),
            reply=True,
        ),
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ROUND_TRIP_MESSAGES)
    def test_encode_decode_identity(self, message):
        assert decode(encode(message)) == message

    def test_subtree_keys_survive_as_subtree_ids(self):
        message = ROUND_TRIP_MESSAGES[5]
        decoded = decode(encode(message))
        assert isinstance(decoded.payload.key, SubtreeId)
        assert decoded.payload.key.prefix_length == 2
        assert decoded.payload.key.prefix_value == 5

    def test_nested_payload_tuples_are_retupled(self):
        decoded = decode(encode(ROUND_TRIP_MESSAGES[6]))
        inner = decoded.payload.entries[1][1].payload
        assert inner == ((1.0, 2.0), (3.0, 4.0))
        assert isinstance(inner, tuple)
        assert isinstance(inner[0], tuple)

    def test_floats_round_trip_exactly(self):
        vote = 0.1 + 0.2  # a float with no short decimal form
        message = Gossip(
            src=0, sent_round=0,
            payload=GossipValue(phase=1, key=0, state=_state(vote, {0})),
        )
        assert decode(encode(message)).payload.state.payload == vote

    def test_encoding_is_deterministic(self):
        for message in ROUND_TRIP_MESSAGES:
            assert encode(message) == encode(message)

    def test_frame_header(self):
        data = encode(Ping(src=0))
        assert data[:2] == MAGIC
        assert data[2] == WIRE_VERSION


class TestHostileInput:
    def test_truncated_frames_reject(self):
        whole = encode(ROUND_TRIP_MESSAGES[4])
        for length in range(len(whole)):
            with pytest.raises(CodecError):
                decode(whole[:length])

    def test_wrong_magic_rejects(self):
        data = b"XX" + encode(Ping(src=0))[2:]
        with pytest.raises(CodecError):
            decode(data)

    def test_wrong_version_byte_rejects(self):
        data = bytearray(encode(Ping(src=0)))
        data[2] = WIRE_VERSION + 1
        with pytest.raises(CodecError):
            decode(bytes(data))

    def test_non_json_body_rejects(self):
        with pytest.raises(CodecError):
            decode(MAGIC + bytes([WIRE_VERSION]) + b"\xff\xfe not json")

    @pytest.mark.parametrize("body", [
        "[]",                                    # not an object
        "{}",                                    # no type tag
        '{"t":"warp"}',                          # unknown type
        '{"t":"ping"}',                          # missing src
        '{"t":"ping","src":"zero"}',             # mistyped src
        '{"t":"ping","src":true}',               # bool is not an int
        '{"t":"join","id":1,"addr":"nope"}',     # malformed address
        '{"t":"welcome","book":[1,2]}',          # book not an object
        '{"t":"welcome","book":{"x":["h",1]}}',  # non-integer member id
        '{"t":"gossip","src":1,"round":0,"payload":{"k":"odd"}}',
        '{"t":"gossip","src":1,"round":0,"payload":{"k":"value",'
        '"phase":1,"key":{"q":3},"state":{"p":1.0,"v":[1]}}}',
        '{"t":"gossip","src":1,"round":0,"payload":{"k":"value",'
        '"phase":1,"key":{"m":1},"state":{"p":1.0,"v":"all"}}}',
        '{"t":"gossip","src":1,"round":0,"payload":{"k":"batch",'
        '"phase":1,"entries":[[1]]}}',
    ])
    def test_structurally_invalid_records_reject(self, body):
        data = MAGIC + bytes([WIRE_VERSION]) + body.encode()
        with pytest.raises(CodecError):
            decode(data)

    def test_bitflip_fuzz_never_raises_anything_else(self):
        """Every single-byte corruption either decodes or CodecErrors."""
        frames = [encode(message) for message in ROUND_TRIP_MESSAGES]
        for frame in frames:
            for position in range(len(frame)):
                for flip in (0x01, 0x80, 0xFF):
                    corrupted = bytearray(frame)
                    corrupted[position] ^= flip
                    try:
                        decode(bytes(corrupted))
                    except CodecError:
                        pass  # the only legal failure mode

    def test_deep_garbage_json_rejects_not_crashes(self):
        payloads = [
            json.dumps({"t": "gossip", "src": 1, "round": 2,
                        "payload": {"k": "batch", "phase": 1,
                                    "entries": [[{"m": 1}, {"p": 0}]]}}),
            json.dumps({"t": "join", "id": 2**80,
                        "addr": ["h", 1]}),  # huge int is fine or rejected
            json.dumps({"t": "welcome", "book": {"5": ["h", "p"]}}),
        ]
        for body in payloads:
            data = MAGIC + bytes([WIRE_VERSION]) + body.encode()
            try:
                decode(data)
            except CodecError:
                pass


class TestNodeDropsBadFrames:
    def test_hostile_datagrams_are_counted_not_fatal(self):
        from repro.net.node import NetNode, NodeConfig

        node = NetNode(
            NodeConfig(node_id=0, group_size=2),
            transport_send=lambda data, addr: None,
        )
        node.datagram_received(b"", ("x", 1))
        node.datagram_received(b"garbage", ("x", 1))
        node.datagram_received(
            MAGIC + bytes([WIRE_VERSION + 1]) + b"{}", ("x", 1)
        )
        assert node.stats.frames_rejected == 3
        assert node.stats.datagrams_received == 3
