"""The per-node metrics exposition endpoint (repro.net.exposition).

``render()`` is pure (request path in, HTTP bytes out) and carries the
whole routing contract, so most of the suite needs no sockets.  The
socket tests drive a real bound listener through a raw asyncio client
— skipped wholesale where the sandbox cannot bind localhost TCP, same
policy as the UDP serve suite.
"""

import asyncio
import json
import socket

import pytest

from repro.net.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    start_metrics_server,
)
from repro.obs.metrics import MetricsRegistry


def _tcp_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_net_tx_total", "frames", labelnames=("node", "type")
    ).labels("0", "gossip").inc(5)
    registry.gauge("repro_net_round", "round", ("node",)) \
        .labels("0").set(7)
    return registry


def _parse(response: bytes) -> tuple[str, dict, bytes]:
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    status = lines[0].split(" ", 1)[1]
    headers = dict(
        line.split(": ", 1) for line in lines[1:] if ": " in line
    )
    return status, headers, body


class TestRender:
    def test_metrics_is_prometheus_text(self):
        server = MetricsServer(_registry())
        status, headers, body = _parse(server.render("/metrics"))
        assert status == "200 OK"
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert int(headers["Content-Length"]) == len(body)
        assert headers["Connection"] == "close"
        text = body.decode("utf-8")
        assert "# TYPE repro_net_tx_total counter" in text
        assert 'repro_net_tx_total{node="0", type="gossip"} 5' in text

    def test_metrics_json_is_the_canonical_snapshot(self):
        registry = _registry()
        server = MetricsServer(registry)
        status, headers, body = _parse(server.render("/metrics.json"))
        assert status == "200 OK"
        assert headers["Content-Type"].startswith("application/json")
        assert body.decode("utf-8") == registry.snapshot_json()
        assert json.loads(body)["schema"] == "repro-metrics/1"

    def test_healthz(self):
        status, __, body = _parse(
            MetricsServer(_registry()).render("/healthz")
        )
        assert status == "200 OK"
        assert body == b"ok\n"

    def test_trailing_slash_is_tolerated(self):
        server = MetricsServer(_registry())
        for path in ("/metrics/", "/metrics.json/", "/healthz/"):
            status, __, __body = _parse(server.render(path))
            assert status == "200 OK", path

    def test_unknown_path_is_404(self):
        server = MetricsServer(_registry())
        for path in ("/", "/metricsx", "/metrics.json.gz", "/favicon.ico"):
            status, __, __body = _parse(server.render(path))
            assert status == "404 Not Found", path

    def test_scrapes_see_live_counters(self):
        registry = _registry()
        server = MetricsServer(registry)
        before = server.render("/metrics.json")
        registry.counter(
            "repro_net_tx_total", labelnames=("node", "type")
        ).labels("0", "gossip").inc()
        after = server.render("/metrics.json")
        assert before != after


@pytest.mark.skipif(
    not _tcp_available(), reason="cannot bind localhost TCP sockets"
)
class TestOverSockets:
    def _request(self, raw: bytes) -> bytes:
        """One raw HTTP exchange against a freshly bound listener."""
        async def scenario():
            server = await start_metrics_server(_registry(), port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(raw)
                await writer.drain()
                response = await asyncio.wait_for(
                    reader.read(), timeout=5
                )
                writer.close()
                return response
            finally:
                await server.close()
        return asyncio.run(scenario())

    def test_get_metrics_roundtrip(self):
        response = self._request(
            b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        status, headers, body = _parse(response)
        assert status == "200 OK"
        assert b"repro_net_tx_total" in body
        assert int(headers["Content-Length"]) == len(body)

    def test_get_metrics_json_roundtrip(self):
        response = self._request(
            b"GET /metrics.json HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        status, __, body = _parse(response)
        assert status == "200 OK"
        assert json.loads(body)["schema"] == "repro-metrics/1"

    def test_non_get_is_405(self):
        response = self._request(
            b"POST /metrics HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 0\r\n\r\n"
        )
        status, __, __body = _parse(response)
        assert status == "405 Method Not Allowed"

    def test_port_zero_binds_an_ephemeral_port(self):
        async def scenario():
            server = await start_metrics_server(_registry(), port=0)
            port = server.port
            await server.close()
            return port, server.port
        port, after_close = asyncio.run(scenario())
        assert port and port > 0
        assert after_close is None

    def test_garbage_request_line_closes_quietly(self):
        async def scenario():
            server = await start_metrics_server(_registry(), port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"\r\n")
                await writer.drain()
                response = await asyncio.wait_for(
                    reader.read(), timeout=5
                )
                writer.close()
                return response
            finally:
                await server.close()
        assert asyncio.run(scenario()) == b""
