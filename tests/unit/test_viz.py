"""Unit tests for the ASCII visualization helpers."""

import numpy as np

from repro.core import (
    FairHash,
    GridAssignment,
    GridBoxHierarchy,
    StaticHash,
    TopologicalHash,
)
from repro.viz import render_box_occupancy, render_hierarchy, render_sensor_map

FIG1_BOXES = {7: 0, 3: 0, 8: 0, 6: 1, 5: 1, 2: 2, 4: 2, 1: 3}


def _figure1_assignment():
    h = GridBoxHierarchy(8, 2)
    return GridAssignment(h, FIG1_BOXES, StaticHash(FIG1_BOXES))


class TestRenderHierarchy:
    def test_figure1_structure(self):
        text = render_hierarchy(_figure1_assignment())
        assert "subtree **" in text
        assert "subtree 0*" in text
        assert "box 00: M7, M3, M8" in text
        assert "box 11: M1" in text

    def test_empty_boxes_omitted(self):
        h = GridBoxHierarchy(8, 2)
        boxes = {1: 0}
        a = GridAssignment(h, boxes, StaticHash(boxes))
        text = render_hierarchy(a)
        assert "box 00" in text
        assert "box 11" not in text
        assert "subtree 1*" not in text

    def test_member_elision(self):
        h = GridBoxHierarchy(8, 2)
        boxes = {i: 0 for i in range(10)}
        a = GridAssignment(h, boxes, StaticHash(boxes))
        text = render_hierarchy(a, max_members_per_box=3)
        assert "(+7)" in text


class TestRenderBoxOccupancy:
    def test_counts_shown(self):
        votes = {i: 1.0 for i in range(64)}
        h = GridBoxHierarchy(64, 4)
        a = GridAssignment(h, votes, FairHash(0))
        text = render_box_occupancy(a)
        assert "16 boxes" in text
        assert "members:" in text


class TestRenderSensorMap:
    def test_plain_map(self):
        positions = {0: (0.1, 0.1), 1: (0.9, 0.9)}
        text = render_sensor_map(positions, width=10, height=5)
        assert text.count("*") == 2
        assert text.startswith("+")

    def test_box_symbols(self):
        rng = np.random.default_rng(0)
        positions = {
            i: (float(x), float(y))
            for i, (x, y) in enumerate(rng.random((20, 2)) * (1 - 1e-9))
        }
        h = GridBoxHierarchy(20, 4)
        a = GridAssignment(h, positions, TopologicalHash(positions, 4))
        text = render_sensor_map(positions, a, width=20, height=10)
        assert any(c.isdigit() for c in text)
