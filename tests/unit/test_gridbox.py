"""Unit tests for the Grid Box Hierarchy address arithmetic."""

import pytest

from repro.core.gridbox import (
    GridAssignment,
    GridBoxHierarchy,
    SubtreeId,
    shared_dense_assignment,
)
from repro.core.hashing import FairHash, StaticHash


class TestHierarchyShape:
    def test_paper_example_n8_k2(self):
        """Figure 1: N=8, K=2 -> 4 boxes with 2-digit addresses, 3 phases."""
        h = GridBoxHierarchy(8, 2)
        assert h.digits == 2
        assert h.num_boxes == 4
        assert h.num_phases == 3

    def test_exact_power_n64_k4(self):
        h = GridBoxHierarchy(64, 4)
        assert h.num_boxes == 16
        assert h.num_phases == 3

    def test_non_power_targets_n_over_k_boxes(self):
        h = GridBoxHierarchy(200, 4)
        # N/K = 50; nearest power of 4 is 64.
        assert h.num_boxes == 64

    def test_small_group_has_at_least_k_boxes(self):
        h = GridBoxHierarchy(3, 2)
        assert h.num_boxes == 2
        assert h.num_phases == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GridBoxHierarchy(0, 2)
        with pytest.raises(ValueError):
            GridBoxHierarchy(10, 1)


class TestAddressing:
    def test_digit_roundtrip(self):
        h = GridBoxHierarchy(64, 4)
        for box in range(h.num_boxes):
            assert h.box_from_digits(h.digits_of(box)) == box

    def test_format_address_matches_figure1(self):
        h = GridBoxHierarchy(8, 2)
        assert [h.format_address(b) for b in range(4)] == [
            "00", "01", "10", "11",
        ]

    def test_digits_validate_range(self):
        h = GridBoxHierarchy(8, 2)
        with pytest.raises(ValueError):
            h.digits_of(4)
        with pytest.raises(ValueError):
            h.box_from_digits([2, 0])
        with pytest.raises(ValueError):
            h.box_from_digits([0])  # too few digits


class TestSubtrees:
    def test_height1_subtree_is_own_box(self):
        h = GridBoxHierarchy(8, 2)
        assert h.subtree_of(2, 1) == SubtreeId(2, 2)

    def test_top_subtree_is_root(self):
        h = GridBoxHierarchy(8, 2)
        assert h.subtree_of(3, 3) == h.root()

    def test_figure1_subtree_membership(self):
        """Boxes 00 and 01 share subtree 0*; 10 and 11 share 1*."""
        h = GridBoxHierarchy(8, 2)
        assert h.subtree_of(0, 2) == h.subtree_of(1, 2)
        assert h.subtree_of(2, 2) == h.subtree_of(3, 2)
        assert h.subtree_of(0, 2) != h.subtree_of(2, 2)

    def test_child_subtrees_partition_parent(self):
        h = GridBoxHierarchy(64, 4)
        parent = h.subtree_of(13, 3)
        children = h.child_subtrees(parent)
        assert len(children) == 4
        covered = set()
        for child in children:
            boxes = {b for b in range(h.num_boxes) if h.contains(child, b)}
            assert not (boxes & covered)
            covered |= boxes
        parent_boxes = {
            b for b in range(h.num_boxes) if h.contains(parent, b)
        }
        assert covered == parent_boxes

    def test_grid_box_has_no_subtree_children(self):
        h = GridBoxHierarchy(8, 2)
        with pytest.raises(ValueError):
            h.child_subtrees(h.subtree_of(0, 1))

    def test_contains_nested(self):
        h = GridBoxHierarchy(64, 4)
        box = 13
        for phase in range(1, h.num_phases + 1):
            assert h.contains(h.subtree_of(box, phase), box)

    def test_phase_out_of_range(self):
        h = GridBoxHierarchy(8, 2)
        with pytest.raises(ValueError):
            h.subtree_of(0, 0)
        with pytest.raises(ValueError):
            h.subtree_of(0, 4)


class TestAssignment:
    def _figure1_assignment(self):
        """The exact Figure 1 layout: M7,M3,M8 | M6,M5 | M2,M4 | M1."""
        h = GridBoxHierarchy(8, 2)
        boxes = {7: 0, 3: 0, 8: 0, 6: 1, 5: 1, 2: 2, 4: 2, 1: 3}
        return h, GridAssignment(h, boxes, StaticHash(boxes))

    def test_members_of_box(self):
        __, a = self._figure1_assignment()
        assert set(a.members_of_box(0)) == {7, 3, 8}
        assert set(a.members_of_box(3)) == {1}

    def test_empty_box(self):
        h = GridBoxHierarchy(8, 2)
        a = GridAssignment(h, [1, 2], StaticHash({1: 0, 2: 0}))
        assert a.members_of_box(3) == ()

    def test_peers_in_subtree_excludes_self(self):
        __, a = self._figure1_assignment()
        view = [1, 2, 3, 4, 5, 6, 7, 8]
        assert set(a.peers_in_subtree(7, 1, view)) == {3, 8}
        assert set(a.peers_in_subtree(7, 2, view)) == {3, 8, 6, 5}
        assert set(a.peers_in_subtree(7, 3, view)) == {3, 8, 6, 5, 2, 4, 1}

    def test_peers_respect_view(self):
        __, a = self._figure1_assignment()
        assert set(a.peers_in_subtree(7, 2, [7, 5])) == {5}

    def test_members_in_subtree_shared_tuple_is_stable(self):
        h, a = self._figure1_assignment()
        subtree = h.subtree_of(0, 2)
        assert a.members_in_subtree(subtree) is a.members_in_subtree(subtree)
        assert set(a.members_in_subtree(subtree)) == {7, 3, 8, 6, 5}

    def test_occupied_children(self):
        h = GridBoxHierarchy(8, 2)
        boxes = {1: 0, 2: 0, 3: 3}  # box 1 and 2 empty
        a = GridAssignment(h, boxes, StaticHash(boxes))
        left = h.subtree_of(0, 2)
        right = h.subtree_of(3, 2)
        assert a.occupied_children(left) == (SubtreeId(2, 0),)
        assert a.occupied_children(right) == (SubtreeId(2, 3),)

    def test_occupied_child_keys_phase1_is_box_members(self):
        __, a = self._figure1_assignment()
        assert set(a.occupied_child_keys(7, 1)) == {7, 3, 8}

    def test_fair_hash_assignment_covers_all_members(self):
        h = GridBoxHierarchy(128, 4)
        members = range(1000, 1128)
        a = GridAssignment(h, members, FairHash(salt=1))
        assert sorted(a.member_ids) == sorted(members)
        total = sum(len(a.members_of_box(b)) for b in range(h.num_boxes))
        assert total == 128

    def test_has_member(self):
        __, a = self._figure1_assignment()
        assert a.has_member(7)
        assert not a.has_member(99)


class TestSubtreeId:
    def test_tuple_semantics(self):
        s = SubtreeId(2, 3)
        assert s == (2, 3)
        assert s.prefix_length == 2
        assert s.prefix_value == 3
        assert hash(s) == hash((2, 3))


class TestIntegerExactLog:
    """Hierarchy sizing at and around exact powers of K.

    ``digits`` is round(log_K(N / K)); at N = K**m the log is exactly
    m - 1, and one member more or less must not move it (the nearest
    half-integer boundary is sqrt(K) away).  The old float-log formula
    could be off by one near these points; the integer version is exact
    by construction, which these pins enforce.
    """

    KS = (2, 3, 4, 5, 7, 16)

    @pytest.mark.parametrize("k", KS)
    def test_exact_powers(self, k):
        m = 2
        while k ** m <= 1_000_000:
            h = GridBoxHierarchy(k ** m, k)
            assert h.digits == m - 1, (k, m)
            assert h.num_boxes == k ** (m - 1)
            assert h.num_phases == m
            m += 1

    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("offset", [-1, +1])
    def test_neighbours_of_exact_powers(self, k, offset):
        m = 2
        while k ** m <= 1_000_000:
            h = GridBoxHierarchy(k ** m + offset, k)
            assert h.digits == max(1, m - 1), (k, m, offset)
            m += 1

    def test_half_integer_ties_round_to_even(self):
        # K = 4: N = 8 has log_4(N/4) = 0.5 exactly, N = 32 has 1.5.
        # round() rounds halves to even; the integer log must match.
        assert GridBoxHierarchy(8, 4).digits == 1   # round(0.5) = 0 -> min 1
        assert GridBoxHierarchy(32, 4).digits == 2  # round(1.5) = 2


class TestSharedDenseAssignment:
    def test_cache_hit_returns_same_object(self):
        a = shared_dense_assignment(64, 4, 64, FairHash(salt=3))
        b = shared_dense_assignment(64, 4, 64, FairHash(salt=3))
        assert a is b

    def test_distinct_keys_get_distinct_assignments(self):
        base = shared_dense_assignment(64, 4, 64, FairHash(salt=3))
        assert shared_dense_assignment(64, 4, 64, FairHash(salt=4)) is not base
        assert shared_dense_assignment(64, 2, 64, FairHash(salt=3)) is not base
        assert shared_dense_assignment(72, 4, 72, FairHash(salt=3)) is not base

    def test_cached_assignment_matches_direct_construction(self):
        cached = shared_dense_assignment(64, 4, 64, FairHash(salt=9))
        direct = GridAssignment(
            GridBoxHierarchy(64, 4), range(64), FairHash(salt=9)
        )
        assert cached.member_ids == direct.member_ids
        assert [cached.box_of(m) for m in range(64)] == [
            direct.box_of(m) for m in range(64)
        ]

    def test_uncacheable_hash_builds_fresh_assignments(self):
        # StaticHash has no cache_key (placement lives in a mutable
        # table), so every call must construct a new assignment.
        table = {m: m % 16 for m in range(64)}
        a = shared_dense_assignment(64, 4, 64, StaticHash(table))
        b = shared_dense_assignment(64, 4, 64, StaticHash(table))
        assert a is not b
        assert [a.box_of(m) for m in range(64)] == [
            b.box_of(m) for m in range(64)
        ]
