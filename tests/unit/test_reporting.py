"""Unit tests for the reporting/rendering helpers."""

from repro.experiments.reporting import (
    FigureResult,
    Series,
    TableResult,
    render_sparkline,
    render_table,
)


def _figure():
    measured = Series("measured", xs=[10, 20], ys=[0.1, 0.01])
    reference = Series("1/N", xs=[10, 20], ys=[0.1, 0.05])
    return FigureResult(
        figure_id="figX",
        title="demo",
        x_label="N",
        y_label="inc",
        series=[measured, reference],
        notes="a note",
    )


class TestSeries:
    def test_add_accumulates(self):
        series = Series("s")
        series.add(1.0, 2.0, error=0.5)
        series.add(2.0, 3.0, error=0.25)
        assert series.xs == [1.0, 2.0]
        assert series.ys == [2.0, 3.0]
        assert series.errors == [0.5, 0.25]


class TestRenderTable:
    def test_contains_headers_and_values(self):
        text = render_table(_figure())
        assert "N" in text
        assert "measured" in text
        assert "0.10000" in text

    def test_missing_cells_dashed(self):
        figure = _figure()
        figure.series[1].xs = [10]  # drop x=20 from second series
        figure.series[1].ys = [0.1]
        assert "-" in render_table(figure)


class TestRenderFigure:
    def test_render_includes_title_and_note(self):
        text = _figure().render()
        assert "figX" in text
        assert "demo" in text
        assert "a note" in text

    def test_sparkline_log_scaled(self):
        series = Series("s", xs=[1, 2, 3], ys=[1.0, 0.1, 0.0])
        text = render_sparkline(series, "inc")
        assert "log10" in text
        assert "." in text  # zero marker

    def test_csv_round_trip(self):
        csv_text = _figure().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "N,measured,1/N"
        assert lines[1].startswith("10,")
        assert len(lines) == 3

    def test_primary_requires_series(self):
        import pytest
        empty = FigureResult("f", "t", "x", "y")
        with pytest.raises(ValueError):
            empty.primary()


class TestTableResult:
    def test_render_and_csv(self):
        table = TableResult(
            title="cmp",
            headers=["protocol", "value"],
            rows=[["gossip", 0.5], ["flood", 1.0]],
            notes="n",
        )
        text = table.render()
        assert "cmp" in text
        assert "gossip" in text
        assert "note: n" in text
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "protocol,value"

    def test_empty_rows_render(self):
        table = TableResult(title="t", headers=["a"])
        assert "t" in table.render()
