"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_path_sensitive(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_seed_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_names_allowed(self):
        assert derive_seed(0, 5, "gossip") == derive_seed(0, 5, "gossip")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(2**70, "x") < 2**64


class TestRngRegistry:
    def test_stream_cached(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("net") is rngs.stream("net")

    def test_streams_independent_of_creation_order(self):
        a = RngRegistry(seed=9)
        b = RngRegistry(seed=9)
        a.stream("one").random(10)  # consume from an unrelated stream
        assert list(a.stream("two").random(5)) == list(
            b.stream("two").random(5)
        )

    def test_same_seed_same_draws(self):
        a = RngRegistry(seed=4).stream("x")
        b = RngRegistry(seed=4).stream("x")
        assert list(a.integers(0, 100, 20)) == list(b.integers(0, 100, 20))

    def test_different_seed_different_draws(self):
        a = RngRegistry(seed=4).stream("x")
        b = RngRegistry(seed=5).stream("x")
        assert list(a.random(8)) != list(b.random(8))

    def test_spawn_derives_new_registry(self):
        root = RngRegistry(seed=0)
        child_a = root.spawn("run", 1)
        child_b = root.spawn("run", 2)
        assert child_a.seed != child_b.seed
        assert child_a.seed == root.spawn("run", 1).seed

    def test_repr_mentions_seed(self):
        assert "seed=3" in repr(RngRegistry(seed=3))
