"""Net-runtime metrics: pinned family names, liveness RTT, loopback feed.

Satellite S1 of the live-metrics layer.  The family names below are a
public contract — ``repro top``, the exposition smoke and any operator
dashboards select on them — so this suite pins the full vocabulary a
live node registers.  RTT is measured in *ticks* (tick → pong-tick),
never wall-clock: under the loopback router's one-tick-latency model a
ping answered immediately comes back exactly two ticks later, which
makes the histogram's contents deterministic and assertable.
"""

import pytest

from repro.net.liveness import LivenessView
from repro.net.loopback import run_loopback_group
from repro.obs.metrics import MetricsRegistry

#: Every family a live node registers, pinned by name.  Renaming any of
#: these breaks repro top and the metrics-smoke assertions — change the
#: consumers in the same commit or don't.
NET_FAMILIES = (
    "repro_net_tx_total",
    "repro_net_tx_bytes_total",
    "repro_net_rx_total",
    "repro_net_rx_rejected_total",
    "repro_net_gossip_dropped_unstarted_total",
    "repro_net_sends_rejected_total",
    "repro_net_joins_sent_total",
    "repro_net_pings_sent_total",
    "repro_net_pongs_received_total",
    "repro_net_ping_rtt_ticks",
    "repro_net_round",
    "repro_net_suspected_peers",
    "repro_net_started",
    "repro_net_terminated",
)


@pytest.fixture(scope="module")
def loopback():
    """One 16-node loopback run with a shared registry attached."""
    registry = MetricsRegistry()
    report = run_loopback_group(16, seed=3, registry=registry)
    return registry, report


class TestPinnedFamilies:
    def test_every_net_family_is_registered(self, loopback):
        registry, __ = loopback
        families = set(registry.families())
        missing = [n for n in NET_FAMILIES if n not in families]
        assert not missing, f"unregistered net families: {missing}"

    def test_phase_events_flow_through_the_node_sink(self, loopback):
        registry, __ = loopback
        # Every NetNode tees its phase sink into the registry, so the
        # same repro_phase_events_total vocabulary the simulator uses
        # shows up on the live side too.
        counter = registry.counter(
            "repro_phase_events_total", labelnames=("kind",)
        )
        assert counter.labels("phase_enter").value > 0
        assert counter.labels("finalize").value == 16


class TestLoopbackFeed:
    def test_tx_counters_match_the_report(self, loopback):
        registry, report = loopback
        tx = registry.counter(
            "repro_net_tx_total", labelnames=("node", "type")
        )
        by_kind: dict[str, float] = {}
        for (__, kind), child in tx._children.items():
            by_kind[kind] = by_kind.get(kind, 0) + child.value
        # stats.messages_sent counts every transmitted frame — gossip,
        # probes and handshakes alike — so the registry total must too.
        assert sum(by_kind.values()) == report.messages_sent
        assert by_kind["gossip"] > 0
        assert by_kind["ping"] == report.net["pings_sent"]
        tx_bytes = registry.counter(
            "repro_net_tx_bytes_total", labelnames=("node", "type")
        )
        assert sum(
            child.value for child in tx_bytes._children.values()
        ) == report.bytes_sent

    def test_rtt_histogram_saw_the_two_tick_loopback(self, loopback):
        registry, report = loopback
        family = registry.snapshot()["metrics"]["repro_net_ping_rtt_ticks"]
        assert family["buckets"] == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        total = sum(sample["count"] for sample in family["samples"])
        assert total == report.net["pongs_received"] > 0
        # One-tick latency each way: every loopback RTT is exactly 2,
        # so everything lands in the le=2 bucket (index 1).
        for sample in family["samples"]:
            assert sample["count"] == sample["counts"][1]
        assert report.net["mean_rtt_ticks"] == 2.0

    def test_terminal_gauges_after_convergence(self, loopback):
        registry, report = loopback
        assert report.converged
        snapshot = registry.snapshot()["metrics"]
        for name, expected in (("repro_net_started", 1),
                               ("repro_net_terminated", 1),
                               ("repro_net_suspected_peers", 0)):
            values = [s["value"] for s in snapshot[name]["samples"]]
            assert values == [expected] * 16, name

    def test_report_net_record_is_json_ready(self, loopback):
        __, report = loopback
        expected_keys = {
            "datagrams_received", "frames_rejected", "joins_sent",
            "gossip_dropped_unstarted", "sends_rejected", "pings_sent",
            "pongs_received", "mean_rtt_ticks", "suspected_peers",
        }
        assert set(report.net) == expected_keys
        assert report.net["pings_sent"] >= report.net["pongs_received"]

    def test_registry_is_optional_and_changes_nothing(self):
        plain = run_loopback_group(16, seed=3)
        registered = run_loopback_group(
            16, seed=3, registry=MetricsRegistry()
        )
        assert plain.estimates == registered.estimates
        assert plain.rounds == registered.rounds
        assert plain.messages_sent == registered.messages_sent
        assert plain.net == registered.net


class TestLivenessRtt:
    def test_ping_pong_round_trip(self):
        view = LivenessView(node_id=0, group_size=4)
        view.record_ping_sent(1, tick=10)
        assert view.pings_sent == 1
        rtt = view.record_pong(1, tick=12)
        assert rtt == 2
        assert view.pongs_received == 1
        assert view.last_rtt == 2
        assert view.mean_rtt() == 2.0

    def test_stray_pong_counts_but_has_no_rtt(self):
        view = LivenessView(node_id=0, group_size=4)
        assert view.record_pong(1, tick=5) is None
        assert view.pongs_received == 1
        assert view.mean_rtt() is None

    def test_pong_is_a_sign_of_life(self):
        view = LivenessView(node_id=0, group_size=4, miss_threshold=8)
        view.record_pong(1, tick=5)
        assert not view.is_suspected(1, tick=7)

    def test_reping_overwrites_the_outstanding_mark(self):
        view = LivenessView(node_id=0, group_size=4)
        view.record_ping_sent(1, tick=0)
        view.record_ping_sent(1, tick=10)
        assert view.record_pong(1, tick=11) == 1

    def test_self_and_out_of_range_peers_are_ignored(self):
        view = LivenessView(node_id=0, group_size=4)
        view.record_ping_sent(0, tick=1)
        view.record_ping_sent(9, tick=1)
        assert view.pings_sent == 0
        assert view.record_pong(0, tick=2) is None
        assert view.record_pong(9, tick=2) is None
        assert view.pongs_received == 0

    def test_mean_averages_multiple_rtts(self):
        view = LivenessView(node_id=0, group_size=8)
        view.record_ping_sent(1, tick=0)
        view.record_pong(1, tick=2)
        view.record_ping_sent(2, tick=0)
        view.record_pong(2, tick=6)
        assert view.mean_rtt() == 4.0
        assert view.rtt_count == 2
