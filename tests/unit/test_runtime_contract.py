"""The explicit runtime contract (repro.core.runtime).

Both substrates — the simulator's shared Context and the UDP runtime's
per-node NetContext — must conform *structurally* to the Protocol
interfaces the protocols are written against, and every protocol
process class must match the GroupProcess shape.  Conformance is
checked with isinstance (the Protocols are runtime_checkable), which
pins method presence; behavioural fine print (deterministic rng_for,
monotone rounds) is pinned by the cross-runtime golden suite.
"""

from repro.baselines.flat_gossip import FlatGossipProcess
from repro.core.aggregates import get_aggregate
from repro.core.gridbox import shared_dense_assignment
from repro.core.hashing import FairHash
from repro.core.hierarchical_gossip import build_hierarchical_gossip_group
from repro.core.runtime import Context, GroupProcess
from repro.net.node import NetContext, NetNode, NodeConfig
from repro.sim.engine import Context as SimContext
from repro.sim.engine import SimulationEngine
from repro.sim.network import LossyNetwork
from repro.sim.rng import RngRegistry


def _sim_context() -> SimContext:
    engine = SimulationEngine(
        LossyNetwork(ucastl=0.0), rngs=RngRegistry(seed=0)
    )
    return SimContext(engine)


def _net_node() -> NetNode:
    config = NodeConfig(node_id=0, group_size=4)
    return NetNode(config, transport_send=lambda data, addr: None)


class TestContextConformance:
    def test_simulator_context_satisfies_the_contract(self):
        assert isinstance(_sim_context(), Context)

    def test_net_context_satisfies_the_contract(self):
        assert isinstance(_net_node().ctx, Context)
        assert isinstance(_net_node().ctx, NetContext)

    def test_contract_is_not_vacuous(self):
        class Half:
            @property
            def round(self):
                return 0

            def send(self, dest, payload, size=1):
                return True

        assert not isinstance(Half(), Context)


class TestProcessConformance:
    def test_hierarchical_gossip_process_matches_group_process(self):
        votes = {i: float(i) for i in range(8)}
        assignment = shared_dense_assignment(8, 4, 8, FairHash(salt=0))
        processes = build_hierarchical_gossip_group(
            votes, get_aggregate("average"), assignment
        )
        assert all(isinstance(p, GroupProcess) for p in processes)

    def test_baseline_process_matches_group_process(self):
        process = FlatGossipProcess(
            node_id=0, vote=1.0, function=get_aggregate("average"),
            view=(0, 1, 2, 3), total_rounds=4,
        )
        assert isinstance(process, GroupProcess)


class TestNetContextBehaviour:
    def test_round_tracks_ticks_and_rng_matches_simulator_derivation(self):
        node = _net_node()
        assert node.ctx.round == 0
        expected = RngRegistry(0).stream("process", 0, "gossip")
        draw = node.ctx.rng_for("gossip").random()
        assert draw == expected.random()

    def test_send_reports_accepted_and_terminate_is_idempotent(self):
        from repro.core.aggregates import AggregateState
        from repro.core.messages import GossipValue

        sent = []
        config = NodeConfig(node_id=1, group_size=4)
        node = NetNode(config, lambda data, addr: sent.append(addr))
        node.book.record(2, ("loopback", 2))
        payload = GossipValue(
            phase=1, key=1,
            state=AggregateState(payload=1.0, members=frozenset({1})),
        )
        assert node.ctx.send(2, payload) is True
        assert sent == [("loopback", 2)]
        # Unknown destination: the datagram is "lost on the wire" —
        # fire-and-forget still reports acceptance.
        assert node.ctx.send(3, payload) is True
        assert len(sent) == 1
        node.ctx.terminate()
        node.ctx.terminate()
        assert node.process.terminated
