"""Unit tests for the mean-field completeness predictor."""

import pytest

from repro.analysis.prediction import (
    predict_completeness,
    predict_incompleteness,
)


class TestPredictCompleteness:
    def test_in_unit_interval(self):
        for n in (50, 200, 1000):
            for ucastl in (0.0, 0.3, 0.7):
                value = predict_completeness(n, ucastl=ucastl)
                assert 0.0 <= value <= 1.0

    def test_monotone_in_loss(self):
        values = [
            predict_completeness(200, ucastl=u)
            for u in (0.0, 0.2, 0.4, 0.6, 0.8)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_monotone_in_rounds(self):
        values = [
            predict_completeness(200, ucastl=0.3, rounds_per_phase=r)
            for r in (2, 4, 6, 8)
        ]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_monotone_in_c(self):
        low = predict_completeness(200, ucastl=0.3, rounds_factor_c=0.5)
        high = predict_completeness(200, ucastl=0.3, rounds_factor_c=2.0)
        assert high >= low

    def test_lossless_generous_rounds_near_one(self):
        value = predict_completeness(200, ucastl=0.0, rounds_factor_c=3.0)
        assert value > 0.999

    def test_incompleteness_complement(self):
        assert predict_incompleteness(100, ucastl=0.2) == pytest.approx(
            1.0 - predict_completeness(100, ucastl=0.2)
        )

    def test_loss_validated(self):
        with pytest.raises(ValueError):
            predict_completeness(100, ucastl=1.5)

    def test_bigger_batch_helps_big_boxes(self):
        small = predict_completeness(200, k=4, max_batch=1, ucastl=0.25)
        large = predict_completeness(200, k=4, max_batch=8, ucastl=0.25)
        assert large >= small
