"""Deeper unit tests for the leader-election baseline internals."""

import pytest

from repro.baselines.leader_election import (
    LeaderElectionProcess,
    build_leader_election_group,
)
from repro.core.aggregates import AverageAggregate
from repro.core.gridbox import GridAssignment, GridBoxHierarchy
from repro.core.hashing import StaticHash
from repro.core.protocol import measure_completeness
from repro.sim.engine import SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

# Figure 1 layout: deterministic roles.
BOXES = {7: 0, 3: 0, 8: 0, 6: 1, 5: 1, 2: 2, 4: 2, 1: 3}
VOTES = {m: float(m) for m in BOXES}


def _group(committee_size=1):
    hierarchy = GridBoxHierarchy(8, 2)
    assignment = GridAssignment(hierarchy, BOXES, StaticHash(BOXES))
    return build_leader_election_group(
        VOTES, AverageAggregate(), assignment,
        committee_size=committee_size,
    )


class TestRoles:
    def test_leader_heights_deterministic(self):
        processes = {p.node_id: p for p in _group()}
        # Box leaders are the smallest ids per box: 3, 5, 2, 1.
        assert processes[3].leader_height >= 1
        assert processes[5].leader_height >= 1
        assert processes[2].leader_height >= 1
        assert processes[1].leader_height >= 1
        # Non-leaders have height 0.
        assert processes[7].leader_height == 0
        assert processes[8].leader_height == 0

    def test_root_leader_is_global_minimum(self):
        processes = {p.node_id: p for p in _group()}
        hierarchy_height = max(p.leader_height for p in processes.values())
        root_leaders = [
            p.node_id for p in processes.values()
            if p.leader_height == hierarchy_height
        ]
        assert root_leaders == [1]  # smallest id overall

    def test_committee_size_two(self):
        processes = {p.node_id: p for p in _group(committee_size=2)}
        # Two smallest ids overall lead the root: 1 and 2.
        top = max(p.leader_height for p in processes.values())
        roots = sorted(
            p.node_id for p in processes.values() if p.leader_height == top
        )
        assert roots == [1, 2]


class TestScheduleMapping:
    def test_phase_of_round(self):
        process = _group()[0]
        rpp = process.rounds_per_phase
        phases = process.num_phases
        assert process._phase_of_round(0) == ("aggregate", 1, 0)
        assert process._phase_of_round(rpp) == ("aggregate", 2, 0)
        assert process._phase_of_round(phases * rpp) == (
            "disseminate", 1, 0,
        )
        assert process._phase_of_round(2 * phases * rpp)[0] == "done"


class TestFaultWindows:
    def test_crash_before_any_report_loses_only_that_vote(self):
        processes = _group()
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            failure_model=ScheduledFailures(crash_at={0: [7]}),
            rngs=RngRegistry(0),
            max_rounds=300,
        )
        engine.add_processes(processes)
        engine.run()
        report = measure_completeness(processes, group_size=8)
        # 7 was a plain member: survivors get everything except its vote,
        # i.e. full survivor-relative completeness.
        assert report.mean_completeness == pytest.approx(1.0)
        assert report.mean_completeness_initial == pytest.approx(7 / 8)

    def test_box_leader_crash_after_phase1_loses_box(self):
        """Crash box 00's leader (M3) right after it composed phase 1 but
        before its report travels — M7/M3/M8's votes vanish upward."""
        processes = _group()
        rpp = processes[0].rounds_per_phase
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            failure_model=ScheduledFailures(crash_at={rpp: [3]}),
            rngs=RngRegistry(0),
            max_rounds=300,
        )
        engine.add_processes(processes)
        engine.run()
        root = next(p for p in processes if p.node_id == 1)
        # The global estimate at the root leader misses box 00 entirely.
        assert not ({7, 8} & root.result.members)
