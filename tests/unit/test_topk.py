"""Unit tests for the Top-K aggregate and the push-pull gossip mode."""

import pytest

from repro.core import (
    FairHash,
    GossipParams,
    GridAssignment,
    GridBoxHierarchy,
    build_hierarchical_gossip_group,
    get_aggregate,
    measure_completeness,
)
from repro.core.aggregates import DoubleCountError, TopKAggregate
from repro.sim import LossyNetwork, Network, RngRegistry, SimulationEngine


class TestTopKAggregate:
    def test_lift_single(self):
        f = TopKAggregate(k=2)
        state = f.lift(5, 9.0)
        assert TopKAggregate.leaders(state) == ((9.0, 5),)
        assert state.members == frozenset({5})

    def test_merge_keeps_top_k(self):
        f = TopKAggregate(k=2)
        state = f.over({0: 1.0, 1: 5.0, 2: 3.0, 3: 4.0})
        assert TopKAggregate.leaders(state) == ((5.0, 1), (4.0, 3))
        assert state.members == frozenset({0, 1, 2, 3})

    def test_finalize_is_kth_value(self):
        f = TopKAggregate(k=3)
        state = f.over({i: float(i) for i in range(10)})
        assert f.finalize(state) == 7.0

    def test_ties_broken_by_member_id(self):
        f = TopKAggregate(k=2)
        state = f.over({3: 1.0, 1: 1.0, 2: 1.0})
        assert TopKAggregate.leaders(state) == ((1.0, 1), (1.0, 2))

    def test_composability(self):
        f = TopKAggregate(k=3)
        votes = {i: float((i * 7) % 13) for i in range(12)}
        left = {m: v for m, v in votes.items() if m < 6}
        right = {m: v for m, v in votes.items() if m >= 6}
        merged = f.merge(f.over(left), f.over(right))
        assert TopKAggregate.leaders(merged) == TopKAggregate.leaders(
            f.over(votes)
        )

    def test_double_count_guard(self):
        f = TopKAggregate(k=1)
        with pytest.raises(DoubleCountError):
            f.merge(f.lift(0, 1.0), f.lift(0, 1.0))

    def test_constant_wire_size(self):
        f = TopKAggregate(k=2)
        small = f.over({0: 1.0, 1: 2.0})
        large = f.over({i: float(i) for i in range(100)})
        assert small.wire_size() == large.wire_size()

    def test_registry(self):
        f = get_aggregate("top_k", k=5)
        assert isinstance(f, TopKAggregate)
        assert f.k == 5

    def test_k_validated(self):
        with pytest.raises(ValueError):
            TopKAggregate(k=0)

    def test_end_to_end_over_protocol(self):
        votes = {i: float(i) for i in range(32)}
        f = TopKAggregate(k=3)
        hierarchy = GridBoxHierarchy(32, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(1))
        processes = build_hierarchical_gossip_group(votes, f, assignment)
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            rngs=RngRegistry(0), max_rounds=200,
        )
        engine.add_processes(processes)
        engine.run()
        for process in processes:
            assert TopKAggregate.leaders(process.result) == (
                (31.0, 31), (30.0, 30), (29.0, 29),
            )


class TestPushPull:
    def _run(self, push_pull, ucastl=0.5, seed=4):
        votes = {i: float(i) for i in range(64)}
        f = get_aggregate("average")
        hierarchy = GridBoxHierarchy(64, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(0))
        processes = build_hierarchical_gossip_group(
            votes, f, assignment, GossipParams(push_pull=push_pull)
        )
        engine = SimulationEngine(
            network=LossyNetwork(ucastl, max_message_size=1 << 20),
            rngs=RngRegistry(seed), max_rounds=200,
        )
        engine.add_processes(processes)
        engine.run()
        report = measure_completeness(processes, 64)
        return report.mean_completeness, engine.network.stats.sent

    def test_push_pull_costs_more_messages(self):
        __, push_messages = self._run(False)
        __, pull_messages = self._run(True)
        assert pull_messages > push_messages

    def test_push_pull_not_worse_completeness(self):
        push, __ = self._run(False)
        pull, __ = self._run(True)
        assert pull >= push - 0.01

    def test_replies_do_not_ping_pong(self):
        """Message volume stays bounded: at most one reply per delivery."""
        __, push_messages = self._run(False, ucastl=0.0)
        __, pull_messages = self._run(True, ucastl=0.0)
        assert pull_messages <= 2 * push_messages + 100
