"""Unit tests for the continuous (Astrolabe-style) MIB layer."""

import pytest

from repro.core import (
    FairHash,
    GridAssignment,
    GridBoxHierarchy,
    get_aggregate,
)
from repro.mib import MibProcess, MibSlice, build_mib_group
from repro.sim import (
    LossyNetwork,
    Network,
    RngRegistry,
    ScheduledFailures,
    SimulationEngine,
)

TRUE = lambda votes: sum(votes.values()) / len(votes)  # noqa: E731


def _world(n=64, ucastl=0.0, seed=0, failures=None, fanout=1):
    votes = {i: float(i) for i in range(n)}
    function = get_aggregate("average")
    assignment = GridAssignment(
        GridBoxHierarchy(n, 4), votes, FairHash(0)
    )
    processes = build_mib_group(votes, function, assignment, fanout)
    engine = SimulationEngine(
        network=LossyNetwork(ucastl, max_message_size=1 << 20),
        failure_model=failures,
        rngs=RngRegistry(seed),
        max_rounds=10_000,
    )
    engine.add_processes(processes)
    return votes, processes, engine


def _advance(engine, rounds):
    target = engine.round + rounds
    engine.run(until=lambda: engine.round >= target)


class TestConvergence:
    def test_queries_converge_to_truth(self):
        votes, processes, engine = _world()
        _advance(engine, 30)
        expected = TRUE(votes)
        for process in processes:
            assert process.query_value() == pytest.approx(expected)

    def test_query_before_any_gossip(self):
        votes, processes, engine = _world()
        # No rounds executed: MIB holds only the initial refresh.
        process = processes[0]
        process.on_start(type("Ctx", (), {"round": 0})())
        value = process.query_value()
        assert value is not None  # own lineage only

    def test_vote_change_propagates(self):
        votes, processes, engine = _world()
        _advance(engine, 30)
        processes[5].set_vote(500.0)
        _advance(engine, 40)
        new_votes = dict(votes)
        new_votes[5] = 500.0
        expected = TRUE(new_votes)
        for process in processes:
            assert process.query_value() == pytest.approx(expected)

    def test_repeated_changes_latest_wins(self):
        votes, processes, engine = _world()
        _advance(engine, 20)
        processes[0].set_vote(100.0)
        _advance(engine, 5)
        processes[0].set_vote(200.0)
        _advance(engine, 40)
        new_votes = dict(votes)
        new_votes[0] = 200.0
        assert processes[-1].query_value() == pytest.approx(TRUE(new_votes))

    def test_convergence_under_loss(self):
        votes, processes, engine = _world(ucastl=0.4, seed=3)
        _advance(engine, 80)
        expected = TRUE(votes)
        values = [p.query_value() for p in processes]
        close = sum(
            1 for v in values if abs(v - expected) < 1e-9
        )
        assert close > 0.9 * len(processes)


class TestFreshness:
    def test_stale_row_never_overwrites_fresh(self):
        votes, processes, engine = _world()
        process = processes[0]
        _advance(engine, 10)
        fresh = process.mib[1][process.node_id]
        stale = MibSlice(1, ((process.node_id,
                              type(fresh)(fresh.state, -1)),))

        class Msg:
            payload = stale

        process.on_message(None, Msg())
        assert process.mib[1][process.node_id].freshness == fresh.freshness

    def test_invalid_level_ignored(self):
        votes, processes, engine = _world()
        process = processes[0]
        before = [dict(level) for level in process.mib]

        class Msg:
            payload = MibSlice(99, ())

        process.on_message(None, Msg())
        assert [dict(level) for level in process.mib] == before


class TestCrashes:
    def test_crashed_member_values_persist(self):
        """No failure detection: a dead member's last vote stays in the
        aggregate (the paper's model; reconfiguration is out of scope)."""
        votes, processes, engine = _world(
            failures=ScheduledFailures(crash_at={15: [0]})
        )
        _advance(engine, 50)
        expected = TRUE(votes)  # including the dead member's vote
        survivors = [p for p in processes if p.alive]
        for process in survivors[:10]:
            assert process.query_value() == pytest.approx(expected)


class TestStructure:
    def test_level_rows_bounded_by_k(self):
        votes, processes, engine = _world()
        _advance(engine, 30)
        hierarchy = processes[0].assignment.hierarchy
        for process in processes:
            for level in range(2, process.levels + 1):
                assert len(process.mib[level]) <= hierarchy.k

    def test_query_level_inspection(self):
        votes, processes, engine = _world()
        _advance(engine, 30)
        top = processes[0].query_level(processes[0].levels)
        assert len(top) >= 1
        assert all(isinstance(v, float) for v in top.values())

    def test_fanout_validated(self):
        votes = {0: 1.0}
        assignment = GridAssignment(
            GridBoxHierarchy(1, 2), votes, FairHash(0)
        )
        with pytest.raises(ValueError):
            MibProcess(0, 1.0, get_aggregate("average"), assignment,
                       fanout_m=0)

    def test_message_rate_is_levels_times_fanout(self):
        votes, processes, engine = _world(n=64, fanout=2)
        _advance(engine, 10)
        per_member_per_round = engine.network.stats.sent / (64 * 10)
        levels = processes[0].levels
        assert per_member_per_round <= levels * 2 + 0.01
