"""Deeper unit tests for the centralized baseline internals."""

import pytest

from repro.baselines.centralized import (
    CentralizedProcess,
    build_centralized_group,
)
from repro.core.aggregates import AverageAggregate
from repro.core.protocol import measure_completeness
from repro.sim.engine import SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.network import LossyNetwork, Network
from repro.sim.rng import RngRegistry

VOTES = {i: float(i) for i in range(30)}


def _run(processes, network=None, failures=None):
    engine = SimulationEngine(
        network=network or Network(max_message_size=1 << 20),
        failure_model=failures,
        rngs=RngRegistry(0),
        max_rounds=2000,
    )
    engine.add_processes(processes)
    engine.run()
    return engine


class TestImplosionStagger:
    def test_report_rounds_spread_by_bandwidth(self):
        processes = build_centralized_group(
            VOTES, AverageAggregate(), leader_bandwidth=10
        )
        report_rounds = sorted(p.report_round for p in processes)
        # 30 members at 10/round -> rounds 0, 1, 2.
        assert report_rounds[0] == 0
        assert report_rounds[-1] == 2
        assert report_rounds.count(0) == 10

    def test_leader_receive_rate_bounded(self):
        """The stagger keeps per-round arrivals at the leader near the
        bandwidth cap (the implosion the paper criticises is modelled,
        not ignored)."""
        processes = build_centralized_group(
            VOTES, AverageAggregate(), leader_bandwidth=5
        )
        leader = processes[0]
        assert leader.is_leader
        # collection window sized to N / bandwidth plus drain
        assert leader.collect_until >= 30 / 5

    def test_time_complexity_linear_in_n(self):
        small = build_centralized_group(
            {i: 1.0 for i in range(20)}, AverageAggregate(),
            leader_bandwidth=5,
        )
        large = build_centralized_group(
            {i: 1.0 for i in range(200)}, AverageAggregate(),
            leader_bandwidth=5,
        )
        assert large[0].collect_until > 5 * small[0].collect_until


class TestDissemination:
    def test_everyone_receives_result_lossless(self):
        processes = build_centralized_group(VOTES, AverageAggregate())
        _run(processes)
        expected = sum(VOTES.values()) / len(VOTES)
        function = AverageAggregate()
        for process in processes:
            assert function.finalize(process.result) == pytest.approx(
                expected
            )

    def test_orphaned_members_fall_back_to_own_vote(self):
        """If every leader message is lost, members time out with only
        their own vote instead of hanging."""
        processes = build_centralized_group(VOTES, AverageAggregate())
        engine = _run(
            processes,
            network=LossyNetwork(1.0, max_message_size=1 << 20),
        )
        report = measure_completeness(processes, group_size=len(VOTES))
        assert report.unfinished == 0
        assert report.mean_completeness == pytest.approx(1 / len(VOTES))

    def test_mid_dissemination_crash_partial_delivery(self):
        """Leader crashes halfway through pushing results: exactly the
        members already served hold the full estimate."""
        processes = build_centralized_group(
            VOTES, AverageAggregate(), leader_bandwidth=5
        )
        leader = processes[0]
        crash_round = leader.collect_until + 2  # two dissemination rounds in
        engine = _run(
            processes,
            failures=ScheduledFailures(crash_at={crash_round: [0]}),
        )
        report = measure_completeness(processes, group_size=len(VOTES))
        fractions = set(report.per_member_initial.values())
        # Some members hold the full estimate, the rest only their vote.
        assert 1.0 in fractions
        assert 1 / len(VOTES) in fractions


class TestValidation:
    def test_leader_bandwidth_validated(self):
        with pytest.raises(ValueError):
            build_centralized_group(
                VOTES, AverageAggregate(), leader_bandwidth=0
            )

    def test_empty_leaders_rejected(self):
        with pytest.raises(ValueError):
            CentralizedProcess(
                0, 1.0, AverageAggregate(), leaders=[], member_rank=0,
                group_size=1,
            )
