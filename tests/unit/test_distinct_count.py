"""Unit tests for the Flajolet-Martin distinct-count sketch aggregate."""

import pytest

from repro.core.aggregates import DistinctCountAggregate, get_aggregate


class TestDistinctCount:
    def test_single_member(self):
        f = DistinctCountAggregate(buckets=16)
        estimate = f.finalize(f.lift(42, 0.0))
        assert 0.5 < estimate < 6.0

    def test_estimate_tracks_cardinality(self):
        f = DistinctCountAggregate(buckets=32)
        for true_count in (50, 200, 1000):
            state = f.over({i: 1.0 for i in range(true_count)})
            estimate = f.finalize(state)
            assert 0.5 * true_count < estimate < 2.0 * true_count

    def test_merge_is_idempotent_on_payload(self):
        """Including the same sketch twice cannot move the estimate."""
        f = DistinctCountAggregate(buckets=8)
        state = f.over({i: 1.0 for i in range(64)})
        assert f._combine(state.payload, state.payload) == state.payload

    def test_composability(self):
        f = DistinctCountAggregate(buckets=8)
        left = f.over({i: 1.0 for i in range(0, 60)})
        right = f.over({i: 1.0 for i in range(60, 130)})
        merged = f.merge(left, right)
        direct = f.over({i: 1.0 for i in range(130)})
        assert merged.payload == direct.payload

    def test_vote_value_irrelevant(self):
        f = DistinctCountAggregate()
        assert f.lift(3, 1.0).payload == f.lift(3, 99.0).payload

    def test_salt_changes_sketch(self):
        a = DistinctCountAggregate(salt=0).lift(7, 0.0)
        b = DistinctCountAggregate(salt=1).lift(7, 0.0)
        assert a.payload != b.payload

    def test_registry(self):
        f = get_aggregate("distinct_count", buckets=4)
        assert isinstance(f, DistinctCountAggregate)
        assert f.buckets == 4

    def test_buckets_validated(self):
        with pytest.raises(ValueError):
            DistinctCountAggregate(buckets=0)

    def test_constant_wire_size(self):
        f = DistinctCountAggregate(buckets=8)
        small = f.lift(0, 1.0)
        large = f.over({i: 1.0 for i in range(500)})
        assert small.wire_size() == large.wire_size()

    def test_over_protocol(self):
        """A distinct-count census over the actual gossip protocol."""
        from repro.core import (
            FairHash,
            GridAssignment,
            GridBoxHierarchy,
            build_hierarchical_gossip_group,
        )
        from repro.sim import Network, RngRegistry, SimulationEngine

        votes = {i: 1.0 for i in range(128)}
        f = DistinctCountAggregate(buckets=32)
        assignment = GridAssignment(
            GridBoxHierarchy(128, 4), votes, FairHash(0)
        )
        processes = build_hierarchical_gossip_group(votes, f, assignment)
        engine = SimulationEngine(
            network=Network(max_message_size=1 << 20),
            rngs=RngRegistry(0), max_rounds=200,
        )
        engine.add_processes(processes)
        engine.run()
        estimate = f.finalize(processes[0].result)
        assert 64 < estimate < 256
