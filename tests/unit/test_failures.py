"""Unit tests for the crash-failure models."""

import numpy as np
import pytest

from repro.sim.failures import (
    ComposedFailures,
    CrashRecovery,
    CrashWithoutRecovery,
    NoFailures,
    ScheduledFailures,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestNoFailures:
    def test_nothing_happens(self):
        model = NoFailures()
        crash, recover = model.step(0, [1, 2, 3], [], _rng())
        assert crash == set()
        assert recover == set()


class TestCrashWithoutRecovery:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            CrashWithoutRecovery(pf=-0.1)
        with pytest.raises(ValueError):
            CrashWithoutRecovery(pf=1.01)

    def test_zero_rate_never_crashes(self):
        model = CrashWithoutRecovery(pf=0.0)
        crash, __ = model.step(0, list(range(100)), [], _rng())
        assert crash == set()

    def test_certain_rate_crashes_everyone(self):
        model = CrashWithoutRecovery(pf=1.0)
        crash, __ = model.step(0, [1, 2, 3], [], _rng())
        assert crash == {1, 2, 3}

    def test_rate_statistics(self):
        model = CrashWithoutRecovery(pf=0.1)
        alive = list(range(50_000))
        crash, __ = model.step(0, alive, [], _rng(1))
        assert 0.09 < len(crash) / len(alive) < 0.11

    def test_never_recovers(self):
        model = CrashWithoutRecovery(pf=0.5)
        __, recover = model.step(0, [1], [2, 3], _rng())
        assert recover == set()

    def test_empty_group(self):
        model = CrashWithoutRecovery(pf=0.5)
        assert model.step(0, [], [], _rng()) == (set(), set())


class TestCrashRecovery:
    def test_recovery_statistics(self):
        model = CrashRecovery(pf=0.0, pr=0.25)
        crashed = list(range(40_000))
        __, recover = model.step(0, [], crashed, _rng(2))
        assert 0.23 < len(recover) / len(crashed) < 0.27

    def test_pr_validated(self):
        with pytest.raises(ValueError):
            CrashRecovery(pf=0.1, pr=1.5)

    def test_both_directions_in_one_step(self):
        model = CrashRecovery(pf=1.0, pr=1.0)
        crash, recover = model.step(0, [1, 2], [3], _rng())
        assert crash == {1, 2}
        assert recover == {3}


class TestScheduledFailures:
    def test_fires_at_exact_rounds(self):
        model = ScheduledFailures(
            crash_at={3: [7, 8]}, recover_at={5: [7]}
        )
        assert model.step(2, [7, 8], [], _rng()) == (set(), set())
        assert model.step(3, [7, 8], [], _rng()) == ({7, 8}, set())
        assert model.step(5, [8], [7], _rng()) == (set(), {7})

    def test_empty_schedule(self):
        model = ScheduledFailures()
        assert model.step(0, [1], [], _rng()) == (set(), set())

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError, match="round numbers"):
            ScheduledFailures(crash_at={-1: [0]})
        with pytest.raises(ValueError, match="round numbers"):
            ScheduledFailures(recover_at={-3: [0]})

    def test_unknown_node_ids_rejected(self):
        with pytest.raises(ValueError, match=r"unknown node ids \[7, 9\]"):
            ScheduledFailures(
                crash_at={1: [0, 7]},
                recover_at={2: [9]},
                member_ids=range(4),
            )

    def test_known_node_ids_accepted(self):
        model = ScheduledFailures(
            crash_at={1: [0, 3]}, recover_at={2: [3]}, member_ids=range(4)
        )
        assert model.step(1, [0, 3], [], _rng()) == ({0, 3}, set())

    def test_no_member_ids_skips_validation(self):
        model = ScheduledFailures(crash_at={1: [999]})
        assert model.step(1, [], [], _rng()) == ({999}, set())

    def test_may_recover_tracks_schedule(self):
        assert not ScheduledFailures(crash_at={1: [0]}).may_recover
        assert ScheduledFailures(recover_at={2: [0]}).may_recover


class TestComposedFailures:
    def test_needs_at_least_one_model(self):
        with pytest.raises(ValueError):
            ComposedFailures()

    def test_unions_crash_and_recovery_sets(self):
        model = ComposedFailures(
            ScheduledFailures(crash_at={1: [0]}),
            ScheduledFailures(crash_at={1: [2]}, recover_at={1: [5]}),
        )
        crash, recover = model.step(1, [0, 2], [5], _rng())
        assert crash == {0, 2}
        assert recover == {5}

    def test_may_recover_is_any(self):
        no_recovery = ComposedFailures(
            NoFailures(), CrashWithoutRecovery(pf=0.1)
        )
        assert not no_recovery.may_recover
        with_recovery = ComposedFailures(
            NoFailures(), ScheduledFailures(recover_at={3: [1]})
        )
        assert with_recovery.may_recover

    def test_sub_models_see_same_snapshot(self):
        class Spy(NoFailures):
            def __init__(self):
                self.seen = []

            def step(self, round_number, alive_ids, crashed_ids, rng):
                self.seen.append((list(alive_ids), list(crashed_ids)))
                return {alive_ids[0]}, set()

        first, second = Spy(), Spy()
        ComposedFailures(first, second).step(0, [1, 2], [3], _rng())
        assert first.seen == second.seen == [([1, 2], [3])]
