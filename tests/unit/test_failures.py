"""Unit tests for the crash-failure models."""

import numpy as np
import pytest

from repro.sim.failures import (
    CrashRecovery,
    CrashWithoutRecovery,
    NoFailures,
    ScheduledFailures,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestNoFailures:
    def test_nothing_happens(self):
        model = NoFailures()
        crash, recover = model.step(0, [1, 2, 3], [], _rng())
        assert crash == set()
        assert recover == set()


class TestCrashWithoutRecovery:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            CrashWithoutRecovery(pf=-0.1)
        with pytest.raises(ValueError):
            CrashWithoutRecovery(pf=1.01)

    def test_zero_rate_never_crashes(self):
        model = CrashWithoutRecovery(pf=0.0)
        crash, __ = model.step(0, list(range(100)), [], _rng())
        assert crash == set()

    def test_certain_rate_crashes_everyone(self):
        model = CrashWithoutRecovery(pf=1.0)
        crash, __ = model.step(0, [1, 2, 3], [], _rng())
        assert crash == {1, 2, 3}

    def test_rate_statistics(self):
        model = CrashWithoutRecovery(pf=0.1)
        alive = list(range(50_000))
        crash, __ = model.step(0, alive, [], _rng(1))
        assert 0.09 < len(crash) / len(alive) < 0.11

    def test_never_recovers(self):
        model = CrashWithoutRecovery(pf=0.5)
        __, recover = model.step(0, [1], [2, 3], _rng())
        assert recover == set()

    def test_empty_group(self):
        model = CrashWithoutRecovery(pf=0.5)
        assert model.step(0, [], [], _rng()) == (set(), set())


class TestCrashRecovery:
    def test_recovery_statistics(self):
        model = CrashRecovery(pf=0.0, pr=0.25)
        crashed = list(range(40_000))
        __, recover = model.step(0, [], crashed, _rng(2))
        assert 0.23 < len(recover) / len(crashed) < 0.27

    def test_pr_validated(self):
        with pytest.raises(ValueError):
            CrashRecovery(pf=0.1, pr=1.5)

    def test_both_directions_in_one_step(self):
        model = CrashRecovery(pf=1.0, pr=1.0)
        crash, recover = model.step(0, [1, 2], [3], _rng())
        assert crash == {1, 2}
        assert recover == {3}


class TestScheduledFailures:
    def test_fires_at_exact_rounds(self):
        model = ScheduledFailures(
            crash_at={3: [7, 8]}, recover_at={5: [7]}
        )
        assert model.step(2, [7, 8], [], _rng()) == (set(), set())
        assert model.step(3, [7, 8], [], _rng()) == ({7, 8}, set())
        assert model.step(5, [8], [7], _rng()) == (set(), {7})

    def test_empty_schedule(self):
        model = ScheduledFailures()
        assert model.step(0, [1], [], _rng()) == (set(), set())
