"""Unit tests for the epidemic analysis (Section 6.3 math)."""

import math

import pytest

from repro.analysis.epidemic import (
    effective_contact_rate,
    infected_fraction,
    logistic_infected,
    num_phases,
    phase1_completeness,
    phase1_postulate_bound,
    phase_completeness_approx,
    phase_completeness_bound,
    theorem1_approx,
    theorem1_bound,
)


class TestLogistic:
    def test_initial_condition(self):
        assert logistic_infected(m=100, b=2.0, t=0.0) == pytest.approx(1.0)

    def test_saturates_at_group_size(self):
        assert logistic_infected(m=100, b=2.0, t=50.0) == pytest.approx(
            100.0, rel=1e-6
        )

    def test_monotone_in_time(self):
        values = [logistic_infected(50, 1.0, t) for t in range(10)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_fraction_in_unit_interval(self):
        for t in (0.0, 1.0, 5.0, 100.0):
            assert 0.0 < infected_fraction(30, 0.5, t) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            logistic_infected(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            logistic_infected(10, 1.0, -1.0)


class TestPhaseBounds:
    def test_exact_and_approx_agree_for_large_n(self):
        exact = phase_completeness_bound(10_000, 4.0)
        approx = phase_completeness_approx(10_000, 4.0)
        assert exact == pytest.approx(approx, abs=1e-6)

    def test_bound_in_unit_interval(self):
        for n in (10, 100, 10_000):
            for b in (1.0, 2.0, 4.0, 8.0):
                assert 0.0 <= phase_completeness_bound(n, b) <= 1.0

    def test_monotone_in_b(self):
        values = [phase_completeness_bound(1000, b) for b in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_paper_form(self):
        """1 - 1/N^(b-1) at b=4, N=1000 -> 1 - 1e-9."""
        assert phase_completeness_approx(1000, 4.0) == pytest.approx(
            1 - 1e-9
        )


class TestPhase1Completeness:
    def test_in_unit_interval(self):
        assert 0.0 <= phase1_completeness(100, 4, 0.5) <= 1.0

    def test_postulate1_regime(self):
        """Figure 4/5 claim: C_1 >= 1 - 1/N for K >= 2, b >= 4."""
        for n in (1000, 2000, 4000, 8000):
            assert phase1_completeness(n, 2, 4.0) >= phase1_postulate_bound(n)

    def test_monotone_in_k(self):
        """Figure 5: completeness rises with K."""
        values = [phase1_completeness(2000, k, 4.0) for k in (4, 8, 16, 32)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_monotone_in_b(self):
        values = [phase1_completeness(2000, 4, b) for b in (0.5, 1, 2, 4)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            phase1_completeness(10, 1, 4.0)
        with pytest.raises(ValueError):
            phase1_completeness(10, 20, 4.0)


class TestTheorem1:
    def test_headline_bound(self):
        assert theorem1_approx(500) == pytest.approx(1 - 1 / 500)

    def test_product_close_to_headline_for_b4(self):
        for n in (500, 2000, 8000):
            product = theorem1_bound(n, 4, 4.0)
            headline = theorem1_approx(n)
            assert product == pytest.approx(headline, abs=1e-4)
            assert product <= 1.0

    def test_num_phases(self):
        assert num_phases(64, 4) == pytest.approx(3.0)
        assert num_phases(8, 2) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            num_phases(10, 1)


class TestEffectiveContactRate:
    def test_lossless(self):
        assert effective_contact_rate(2) == 2.0

    def test_thinning(self):
        assert effective_contact_rate(2, ucastl=0.25) == pytest.approx(1.5)
        assert effective_contact_rate(
            2, ucastl=0.25, pf=0.5
        ) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_contact_rate(0)
