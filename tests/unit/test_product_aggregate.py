"""Unit tests for the product-of-aggregates composition."""

import pytest

from repro.core.aggregates import (
    AverageAggregate,
    DoubleCountError,
    MaxAggregate,
    MinAggregate,
    ProductAggregate,
    TopKAggregate,
)


def _product():
    return ProductAggregate(
        [AverageAggregate(), MinAggregate(), MaxAggregate()]
    )


class TestProductAggregate:
    def test_scalar_vote_broadcasts_to_components(self):
        f = _product()
        state = f.lift(0, 5.0)
        assert f.finalize(state) == (5.0, 5.0, 5.0)

    def test_vector_vote_per_component(self):
        f = _product()
        state = f.lift(0, (1.0, 2.0, 3.0))
        assert f.finalize(state) == (1.0, 2.0, 3.0)

    def test_vector_length_checked(self):
        with pytest.raises(ValueError):
            _product().lift(0, (1.0, 2.0))

    def test_matches_components_run_separately(self):
        f = _product()
        votes = {i: float(i * 3 % 7) for i in range(20)}
        combined = f.finalize(f.over(votes))
        separate = tuple(
            component.finalize(component.over(votes))
            for component in f.functions
        )
        assert combined == separate

    def test_finalize_each_names_components(self):
        f = _product()
        results = f.finalize_each(f.over({0: 1.0, 1: 3.0}))
        assert results == {"average": 2.0, "min": 1.0, "max": 3.0}

    def test_composability(self):
        f = _product()
        votes = {i: float(i) for i in range(10)}
        left = f.over({m: v for m, v in votes.items() if m < 5})
        right = f.over({m: v for m, v in votes.items() if m >= 5})
        assert f.finalize(f.merge(left, right)) == f.finalize(f.over(votes))

    def test_double_count_guard(self):
        f = _product()
        with pytest.raises(DoubleCountError):
            f.merge(f.lift(1, 0.0), f.lift(1, 0.0))

    def test_with_overriding_components(self):
        """Components that override lift (TopK) still work in a product."""
        f = ProductAggregate([TopKAggregate(k=2), AverageAggregate()])
        state = f.over({i: float(i) for i in range(5)})
        topk_payload, average_payload = state.payload
        assert topk_payload == ((4.0, 4), (3.0, 3))
        assert average_payload == (10.0, 5)

    def test_wire_size_is_sum_of_parts(self):
        f = _product()
        state = f.lift(0, 1.0)
        # (sum,count) + min + max = 4 scalars
        assert state.wire_size() == 32

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            ProductAggregate([])
