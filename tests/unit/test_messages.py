"""Unit tests for wire message payloads and size accounting."""

from repro.core.aggregates import AverageAggregate, SumAggregate
from repro.core.gridbox import SubtreeId
from repro.core.messages import (
    ID_SIZE,
    AggregateReport,
    Dissemination,
    GossipBatch,
    GossipValue,
    VoteReport,
)

F = AverageAggregate()


class TestGossipValue:
    def test_wire_size_includes_header_and_payload(self):
        value = GossipValue(1, 3, F.lift(3, 1.0))
        # phase + key + (sum, count)
        assert value.wire_size() == 2 * ID_SIZE + 16

    def test_frozen(self):
        value = GossipValue(1, 3, F.lift(3, 1.0))
        try:
            value.phase = 2
            assert False, "should be immutable"
        except AttributeError:
            pass


class TestGossipBatch:
    def test_size_scales_with_entries(self):
        one = GossipBatch(1, ((3, F.lift(3, 1.0)),))
        two = GossipBatch(
            1, ((3, F.lift(3, 1.0)), (4, F.lift(4, 2.0)))
        )
        assert two.wire_size() == one.wire_size() + ID_SIZE + 16

    def test_empty_batch_has_header(self):
        assert GossipBatch(1, ()).wire_size() == ID_SIZE

    def test_subtree_keys_supported(self):
        batch = GossipBatch(
            2, ((SubtreeId(2, 1), F.over({1: 1.0, 2: 2.0})),)
        )
        assert batch.wire_size() == ID_SIZE + ID_SIZE + 16


class TestReports:
    def test_vote_report(self):
        report = VoteReport(5, SumAggregate().lift(5, 2.0))
        assert report.wire_size() == ID_SIZE + 8

    def test_aggregate_report(self):
        report = AggregateReport(SubtreeId(1, 0), F.over({1: 1.0}))
        assert report.wire_size() == ID_SIZE + 16

    def test_dissemination(self):
        packet = Dissemination(F.over({1: 1.0, 2: 2.0}))
        assert packet.wire_size() == 16

    def test_sizes_do_not_grow_with_members_covered(self):
        small = Dissemination(F.over({1: 1.0}))
        large = Dissemination(F.over({i: 1.0 for i in range(500)}))
        assert small.wire_size() == large.wire_size()
