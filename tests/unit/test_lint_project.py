"""Whole-program index tests: summaries, linking, dispatch, taint.

The per-file rules are covered in ``test_lint_rules.py`` and the
engine machinery in ``test_lint_engine.py``; here the subject is the
project layer underneath REP007-REP009 — module summaries, the linked
call graph with context-aware dispatch, engine-path reachability,
interprocedural taint, and the on-disk cache.  Most tests run on small
synthetic projects (no files needed — summaries take source strings);
a few pin facts about the real tree under ``src/repro``.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.graph_rules import (
    ALL_PROJECT_RULES,
    EngineParityRule,
    InterproceduralWallClockRule,
    LayeringRule,
    StreamDisciplineRule,
    unit_of,
)
from repro.lint.project import (
    LintCache,
    ProjectIndex,
    module_name_for,
    source_hash,
    summarize_module,
)

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def build_index(modules):
    """Index a synthetic project given ``{module: source}``."""
    summaries = []
    for module, source in modules.items():
        path = module.replace(".", "/") + ".py"
        summaries.append(
            summarize_module(textwrap.dedent(source), path, module)
        )
    return ProjectIndex(summaries)


@pytest.fixture(scope="module")
def real_index():
    """The linked index over the actual ``src/repro`` tree."""
    summaries = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        module = module_name_for(path, SRC)
        summaries.append(
            summarize_module(path.read_text(), str(path), module)
        )
    return ProjectIndex(summaries)


class TestNamingAndHashing:
    def test_module_name_anchors_on_repro(self):
        path = SRC / "repro" / "sim" / "engine.py"
        assert module_name_for(path, SRC) == "repro.sim.engine"

    def test_module_name_relative_to_base_without_repro(self, tmp_path):
        path = tmp_path / "sim" / "engine.py"
        assert module_name_for(path, tmp_path) == "sim.engine"

    def test_init_module_drops_the_filename(self):
        path = SRC / "repro" / "sim" / "__init__.py"
        assert module_name_for(path, SRC) == "repro.sim"

    def test_source_hash_is_stable_and_content_addressed(self):
        assert source_hash("x = 1\n") == source_hash("x = 1\n")
        assert source_hash("x = 1\n") != source_hash("x = 2\n")
        assert source_hash("").startswith("sha256:")


class TestSummaries:
    def test_summary_is_json_serializable(self):
        summary = summarize_module(
            "def f():\n    return 1\n", "m.py", "m"
        )
        assert json.loads(json.dumps(summary)) == summary

    def test_imports_record_both_forms(self):
        summary = summarize_module(
            "import a.b\nfrom c.d import e\n", "m.py", "m"
        )
        targets = [imp["targets"] for imp in summary["imports"]]
        assert ["a.b"] in targets
        assert any("c.d.e" in t for t in targets)

    def test_function_facts(self):
        source = textwrap.dedent(
            """
            import time

            def f(rngs, flag):
                stream = rngs.stream("net", "loss")
                if flag:
                    stream.random()
                time.time()
                g()

            def g():
                pass
            """
        )
        summary = summarize_module(source, "m.py", "m")
        f = summary["functions"]["f"]
        [draw] = f["draws"]
        assert draw["stream"] == "net.loss"
        assert draw["conditional"] is True
        assert any(b["name"] == "time.time" for b in f["banned"])
        assert any(
            c.get("name") == "m.g" for c in f["calls"] if "name" in c
        )

    def test_unconditional_draw_is_not_conditional(self):
        source = textwrap.dedent(
            """
            def f(rngs):
                stream = rngs.stream("net", "loss")
                return stream.random()
            """
        )
        [draw] = summarize_module(source, "m.py", "m")["functions"][
            "f"
        ]["draws"]
        assert draw["conditional"] is False

    def test_per_member_stream_is_not_shared(self):
        source = textwrap.dedent(
            """
            def f(rngs, node):
                stream = rngs.stream("jitter", node)
                if node:
                    stream.random()
            """
        )
        summary = summarize_module(source, "m.py", "m")
        assert summary["functions"]["f"]["draws"] == []

    def test_phase_emission_with_conditional_kind(self):
        source = textwrap.dedent(
            """
            from obs import PhaseEvent

            def f(sink, late):
                sink.emit(PhaseEvent("a" if late else "b", 0, 0, 0))
            """
        )
        kinds = {
            emit["kind"]
            for emit in summarize_module(source, "m.py", "m")[
                "functions"
            ]["f"]["phase_emits"]
        }
        assert kinds == {"a", "b"}


class TestDispatch:
    BASE_PROJECT = {
        "proj.base": """
            class Engine:
                def __init__(self):
                    self.net = Net()

                def run(self):
                    self.step()
                    self.net.send()

                def step(self):
                    base_step()

            class Net:
                def send(self):
                    pass

            def base_step():
                pass
            """,
        "proj.obj": """
            from proj.base import Engine

            class ObjectEngine(Engine):
                def run(self):
                    super().run()

                def step(self):
                    object_step()

            def object_step():
                pass
            """,
        "proj.arr": """
            from proj.base import Engine

            class ArrayEngine(Engine):
                def run(self):
                    super().run()

                def step(self):
                    array_step()

            def array_step():
                pass
            """,
    }

    def test_self_dispatch_is_context_exact(self):
        index = build_index(self.BASE_PROJECT)
        reached = index.reachable(("proj.obj.ObjectEngine.run",))
        # super().run() lands in Engine.run with the ObjectEngine
        # context preserved, so self.step() binds the override.
        assert "proj.base.Engine.run" in reached
        assert "proj.obj.object_step" in reached
        # the sibling subclass's override must NOT leak in
        assert "proj.arr.array_step" not in reached
        assert "proj.base.base_step" not in reached

    def test_selfattr_resolves_through_inherited_attribute(self):
        # ObjectEngine never assigns self.net; the type comes from the
        # base __init__ via the MRO walk.
        index = build_index(self.BASE_PROJECT)
        reached = index.reachable(("proj.obj.ObjectEngine.run",))
        assert "proj.base.Net.send" in reached

    def test_typed_dispatch_fans_out_to_subclass_overrides(self):
        project = dict(self.BASE_PROJECT)
        project["proj.main"] = """
            from proj.base import Engine

            def drive(engine: Engine):
                engine.step()
            """
        index = build_index(project)
        reached = index.reachable(("proj.main.drive",))
        assert "proj.obj.object_step" in reached
        assert "proj.arr.array_step" in reached
        assert "proj.base.base_step" in reached

    def test_lookup_class_accepts_unique_dot_suffix(self):
        index = build_index(self.BASE_PROJECT)
        assert index.lookup_class("base.Engine") == "proj.base.Engine"
        assert (
            index.transitive_subclasses("proj.base.Engine")
            == {"proj.obj.ObjectEngine", "proj.arr.ArrayEngine"}
        )


class TestTaint:
    def test_taint_propagates_through_indirection(self):
        index = build_index(
            {
                "util": """
                    import time

                    def stamp():
                        return _now()

                    def _now():
                        return time.time()
                    """,
                "proj.sim.log": """
                    from util import stamp

                    def record(log):
                        log.append(stamp())
                    """,
            }
        )
        taint = index.taint_map()
        assert taint["util._now"][0] == "time.time"
        assert taint["util.stamp"][2] == "util._now"
        assert index.taint_chain("proj.sim.log.record", taint) == [
            "proj.sim.log.record",
            "util.stamp",
            "util._now",
        ]

    def test_module_level_code_never_taints(self):
        # repro.sanitize reads os.environ at import time by design;
        # only *function bodies* seed the taint map.
        index = build_index(
            {
                "conf": """
                    import os

                    FLAG = os.environ.get("X")

                    def read():
                        return FLAG
                    """
            }
        )
        assert index.taint_map() == {}


class TestProjectRules:
    def test_layering_rule_on_synthetic_violation(self):
        index = build_index(
            {
                "sim.engine": "import obs.metrics\n",
                "obs.metrics": "ROWS = []\n",
            }
        )
        [violation] = list(LayeringRule().check(index))
        assert violation.code == "REP007"
        assert "'sim' must not import 'obs'" in violation.message

    def test_unit_of_uses_the_segment_after_repro(self):
        assert unit_of("repro.sim.engine") == "sim"
        assert unit_of("sim.engine") == "sim"
        assert unit_of("repro.cli") == "cli"

    def test_engine_rules_are_vacuous_without_both_roots(self):
        # No array path in this project -> REP008/REP009 stay silent
        # rather than flagging everything as unpaired.
        index = build_index(
            {
                "sim.engine": """
                    class SimulationEngine:
                        def run(self):
                            pass
                    """
            }
        )
        assert list(StreamDisciplineRule().check(index)) == []
        assert list(EngineParityRule().check(index)) == []

    def test_plan_calls_pair_as_an_equivalence_class(self):
        # plan_delivery on one path and plan_delivery_block on the
        # other satisfies parity — the corpus clean fixture relies on
        # this, and this test pins it directly.
        index = build_index(
            {
                "sim.net": """
                    class Net:
                        def plan_delivery(self, m):
                            return m

                        def plan_delivery_block(self, ms):
                            return ms
                    """,
                "sim.engine": """
                    from sim.net import Net

                    class SimulationEngine:
                        def __init__(self):
                            self.network = Net()

                        def run(self):
                            self.network.plan_delivery(1)
                    """,
                "sim.array_engine": """
                    from sim.net import Net

                    class ArraySteppedEngine:
                        def __init__(self):
                            self.network = Net()

                        def run(self):
                            self.network.plan_delivery_block([1])
                    """,
            }
        )
        assert list(EngineParityRule().check(index)) == []

    def test_interproc_rule_skips_direct_banned_sites(self):
        # A det-package function calling time.time() directly is the
        # per-file REP002's finding; the project rule must not double
        # report it.
        index = build_index(
            {
                "proj.sim.clock": """
                    import time

                    def now():
                        return time.time()
                    """
            }
        )
        assert list(InterproceduralWallClockRule().check(index)) == []

    def test_all_project_rules_have_unique_codes(self):
        codes = [rule.code for rule in ALL_PROJECT_RULES]
        assert len(codes) == len(set(codes))


class TestRealTree:
    OBJECT_ROOTS = (
        "sim.engine.SimulationEngine.run",
        "sim.engine.SimulationEngine._step_processes",
    )
    ARRAY_ROOTS = (
        "sim.array_engine.ArraySteppedEngine.run",
        "sim.array_engine.ArraySteppedEngine._step_processes",
        "core.array_stepper.HierarchicalArrayStepper.step",
    )

    def test_index_covers_the_tree(self, real_index):
        stats = real_index.stats()
        assert stats["modules"] >= 70
        assert stats["functions"] >= 700
        assert stats["import_edges"] >= 400

    def test_shared_protocol_core_reachable_from_both_paths(
        self, real_index
    ):
        obj = real_index.reachable(self.OBJECT_ROOTS)
        arr = real_index.reachable(self.ARRAY_ROOTS)
        for fq in (
            "repro.core.hierarchical_gossip.HierarchicalGossipProcess"
            "._maybe_advance",
            "repro.core.hierarchical_gossip.HierarchicalGossipProcess"
            "._emit_finalize",
        ):
            assert fq in obj, fq
            assert fq in arr, fq

    def test_array_only_entry_points_stay_off_the_object_path(
        self, real_index
    ):
        obj = real_index.reachable(self.OBJECT_ROOTS)
        assert not any(fq.endswith(".submit_block") for fq in obj)
        assert not any(fq.endswith(".absorb_payloads") for fq in obj)

    def test_plan_delivery_block_reachable_via_inherited_attr(
        self, real_index
    ):
        arr = real_index.reachable(
            ("sim.array_engine.ArraySteppedEngine.submit_block",)
        )
        assert any(fq.endswith(".plan_delivery_block") for fq in arr)

    def test_src_tree_has_no_project_rule_findings(self, real_index):
        for rule in ALL_PROJECT_RULES:
            assert list(rule.check(real_index)) == [], rule.code


class TestCache:
    def test_round_trip(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = LintCache(cache_file)
        entry = {"hash": "sha256:abc", "violations": [], "pragmas": []}
        cache.put("a.py", entry)
        cache.save()

        reloaded = LintCache(cache_file)
        assert reloaded.get("a.py", "sha256:abc") == entry
        assert reloaded.hits == 1

    def test_hash_mismatch_is_a_miss(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = LintCache(cache_file)
        cache.put("a.py", {"hash": "sha256:abc"})
        cache.save()

        reloaded = LintCache(cache_file)
        assert reloaded.get("a.py", "sha256:OTHER") is None
        assert reloaded.misses == 1

    def test_unknown_schema_is_discarded(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text(
            json.dumps({"schema": "something-else/9", "files": {}})
        )
        cache = LintCache(cache_file)
        assert cache.get("a.py", "sha256:abc") is None

    def test_corrupt_cache_is_discarded(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        cache = LintCache(cache_file)
        assert cache.get("a.py", "sha256:abc") is None
