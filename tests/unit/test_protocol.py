"""Unit tests for the AggregationProcess base and completeness reporting."""

import pytest

from repro.core.aggregates import AverageAggregate
from repro.core.protocol import (
    AggregationProcess,
    CompletenessReport,
    measure_completeness,
)

F = AverageAggregate()


def _process(node_id, vote=1.0, result_members=None, alive=True):
    process = AggregationProcess(node_id, vote, F)
    process.alive = alive
    if result_members is not None:
        process.result = F.over({m: 1.0 for m in result_members})
    return process


class TestAggregationProcess:
    def test_own_state(self):
        process = _process(3, vote=2.5)
        state = process.own_state()
        assert state.members == frozenset({3})
        assert F.finalize(state) == 2.5

    def test_completeness_none_before_result(self):
        assert _process(0).completeness(10) is None

    def test_completeness_fraction(self):
        process = _process(0, result_members=[0, 1, 2, 3])
        assert process.completeness(8) == 0.5


class TestMeasureCompleteness:
    def test_survivor_relative_headline(self):
        processes = [
            _process(0, result_members=[0, 1]),       # both survivors
            _process(1, result_members=[0, 1, 2]),    # includes crashed 2
            _process(2, alive=False),                  # crashed
        ]
        report = measure_completeness(processes, group_size=3)
        assert report.survivors == 2
        assert report.crashed == 1
        # member 0 covers {0,1} of survivors {0,1} -> 1.0
        assert report.per_member[0] == 1.0
        # member 1 covers {0,1} of survivors (2 is dead) -> 1.0
        assert report.per_member[1] == 1.0
        assert report.mean_completeness == 1.0
        # initial-relative counts the crashed member's vote
        assert report.per_member_initial[1] == pytest.approx(1.0)
        assert report.per_member_initial[0] == pytest.approx(2 / 3)

    def test_unfinished_members_counted(self):
        processes = [_process(0), _process(1, result_members=[1])]
        report = measure_completeness(processes, group_size=2)
        assert report.unfinished == 1
        assert set(report.per_member) == {1}

    def test_all_crashed_is_zero_completeness(self):
        processes = [_process(0, alive=False), _process(1, alive=False)]
        report = measure_completeness(processes, group_size=2)
        assert report.mean_completeness == 0.0
        assert report.mean_incompleteness == 1.0
        assert report.min_completeness == 0.0

    def test_mean_incompleteness_complement(self):
        processes = [_process(0, result_members=[0])]
        report = measure_completeness(processes, group_size=1)
        assert report.mean_completeness == 1.0
        assert report.mean_incompleteness == 0.0

    def test_initial_metric_differs_under_crashes(self):
        processes = [
            _process(0, result_members=[0]),
            _process(1, alive=False),
        ]
        report = measure_completeness(processes, group_size=2)
        assert report.mean_completeness == 1.0          # all survivors in
        assert report.mean_completeness_initial == 0.5  # dead vote missing
