"""Unit tests for the chaos campaign subsystem (events, compiler, models)."""

import numpy as np
import pytest

from repro.chaos import (
    CAMPAIGNS,
    CampaignFailureModel,
    ChaosCampaign,
    ChaosNetwork,
    ChurnWindow,
    CorrelatedCrash,
    CrashStorm,
    LatencyBurst,
    LossBurst,
    PartitionWindow,
    campaign_names,
    get_campaign,
)
from repro.sim.network import Message
from repro.sim.rng import RngRegistry


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestEventValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            CrashStorm(at=1.5, fraction=0.1)
        with pytest.raises(ValueError):
            CrashStorm(at=0.5, fraction=-0.1)

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            LossBurst(start=0.6, stop=0.4, loss=0.5)
        with pytest.raises(ValueError):
            PartitionWindow(start=0.5, stop=0.5)

    def test_recover_must_follow_crash(self):
        with pytest.raises(ValueError):
            CorrelatedCrash(at=0.5, boxes=0.1, recover_at=0.3)
        CorrelatedCrash(at=0.3, boxes=0.1, recover_at=0.5)  # fine

    def test_churn_delay_validated(self):
        with pytest.raises(ValueError):
            ChurnWindow(start=0.1, stop=0.5, crash_rate=0.01,
                        recovery_delay=(0, 4))
        with pytest.raises(ValueError):
            ChurnWindow(start=0.1, stop=0.5, crash_rate=0.01,
                        recovery_delay=(5, 4))

    def test_latency_burst_needs_delay(self):
        with pytest.raises(ValueError):
            LatencyBurst(start=0.1, stop=0.5, extra_rounds=0)

    def test_partition_parts_validated(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=0.1, stop=0.5, parts=1)


class TestCampaignDefinition:
    def test_name_required(self):
        with pytest.raises(ValueError):
            ChaosCampaign(name="", description="x")

    def test_events_must_be_fault_events(self):
        with pytest.raises(TypeError):
            ChaosCampaign(name="bad", description="x",
                          events=("not-an-event",))

    def test_paper_assumptions_forbids_events(self):
        with pytest.raises(ValueError):
            ChaosCampaign(
                name="cheat", description="x", paper_assumptions=True,
                events=(CrashStorm(at=0.5, fraction=0.1),),
            )


class TestRegistry:
    def test_names_match_registry_keys(self):
        assert list(campaign_names()) == list(CAMPAIGNS)
        for name, campaign in CAMPAIGNS.items():
            assert campaign.name == name

    def test_exactly_one_paper_assumption_campaign(self):
        flagged = [c for c in CAMPAIGNS.values() if c.paper_assumptions]
        assert [c.name for c in flagged] == ["paper-iid"]

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="crash-storm"):
            get_campaign("no-such-campaign")


class TestCompile:
    def test_horizon_validated(self):
        with pytest.raises(ValueError):
            get_campaign("paper-iid").compile(horizon=0)

    def test_fractions_resolve_to_rounds(self):
        campaign = ChaosCampaign(
            name="t", description="x",
            events=(CrashStorm(at=0.5, fraction=0.2),
                    LossBurst(start=0.25, stop=0.75, loss=0.6)),
        )
        compiled = campaign.compile(horizon=20, base_pf=0.0)
        assert compiled.failure_model.storms == ((10, 0.2),)
        assert compiled.controller.loss_windows == ((5, 15, 0.6),)

    def test_degenerate_window_spans_one_round(self):
        campaign = ChaosCampaign(
            name="t", description="x",
            events=(LossBurst(start=0.5, stop=0.55, loss=0.9),),
        )
        compiled = campaign.compile(horizon=4, base_pf=0.0)
        ((start, stop, __),) = compiled.controller.loss_windows
        assert stop == start + 1

    def test_rack_wipe_requires_box_groups(self):
        campaign = ChaosCampaign(
            name="t", description="x",
            events=(CorrelatedCrash(at=0.5, boxes=0.2),),
        )
        with pytest.raises(ValueError, match="box_groups"):
            campaign.compile(horizon=20, base_pf=0.0)
        campaign.compile(horizon=20, base_pf=0.0,
                         box_groups=[(0, 1), (2, 3)])

    def test_network_kwargs_forwarded(self):
        compiled = get_campaign("paper-iid").compile(
            horizon=10, max_message_size=123
        )
        assert compiled.network.max_message_size == 123


class TestChaosNetwork:
    def _message(self, src=0, dest=1):
        return Message(src=src, dest=dest, payload="x", sent_round=0)

    def test_base_loss_validated(self):
        with pytest.raises(ValueError):
            ChaosNetwork(base_loss=1.5)

    def test_heap_scheduling_forced(self):
        assert ChaosNetwork(base_loss=0.0).fixed_latency is None

    def test_loss_tracks_current_state(self):
        network = ChaosNetwork(base_loss=0.1)
        assert network.loss_probability(self._message()) == 0.1
        network.current_loss = 0.7
        assert network.loss_probability(self._message()) == 0.7

    def test_partition_raises_cross_side_loss(self):
        network = ChaosNetwork(base_loss=0.1)
        network.partition = (2, 0.9)
        crossing = self._message(src=0, dest=1)    # 0 % 2 != 1 % 2
        same_side = self._message(src=0, dest=2)
        assert network.loss_probability(crossing) == 0.9
        assert network.loss_probability(same_side) == 0.1

    def test_latency_adds_current_extra(self):
        network = ChaosNetwork(base_loss=0.0)
        rngs = RngRegistry(0)
        assert network.plan_delivery(self._message(), rngs) == 1
        network.current_extra_latency = 3
        assert network.plan_delivery(self._message(), rngs) == 4

    def test_partition_boundary_drops_counted(self):
        network = ChaosNetwork(base_loss=0.0)
        network.partition = (2, 1.0)
        rngs = RngRegistry(0)
        assert network.plan_delivery(self._message(0, 1), rngs) is None
        assert network.stats.dropped_cross_partition == 1


class TestController:
    def _compiled(self, events, horizon=10):
        campaign = ChaosCampaign(name="t", description="x",
                                 events=tuple(events))
        return campaign.compile(horizon=horizon, base_loss=0.1, base_pf=0.0)

    def test_state_recomputed_each_round(self):
        compiled = self._compiled(
            [LossBurst(start=0.2, stop=0.6, loss=0.8)]
        )
        controller, network = compiled.controller, compiled.network
        controller.on_begin_round(0)
        assert network.current_loss == 0.1
        controller.on_begin_round(3)
        assert network.current_loss == 0.8
        controller.on_begin_round(7)
        assert network.current_loss == 0.1

    def test_overlapping_bursts_take_max(self):
        compiled = self._compiled([
            LossBurst(start=0.0, stop=1.0, loss=0.4),
            LossBurst(start=0.2, stop=0.6, loss=0.7),
        ])
        compiled.controller.on_begin_round(3)
        assert compiled.network.current_loss == 0.7

    def test_partition_window_sets_and_clears(self):
        compiled = self._compiled(
            [PartitionWindow(start=0.2, stop=0.6, partl=0.9, parts=2)]
        )
        controller, network = compiled.controller, compiled.network
        controller.on_begin_round(3)
        assert network.partition == (2, 0.9)
        controller.on_begin_round(6)
        assert network.partition is None

    def test_degraded_rounds_counted(self):
        compiled = self._compiled(
            [LatencyBurst(start=0.0, stop=0.5, extra_rounds=2)]
        )
        for round_number in range(10):
            compiled.controller.on_begin_round(round_number)
        assert compiled.controller.degraded_rounds == 5


class TestCampaignFailureModel:
    def test_storm_crashes_requested_fraction(self):
        model = CampaignFailureModel(storms=[(5, 0.25)])
        alive = list(range(100))
        assert model.step(4, alive, [], _rng()) == (set(), set())
        crash, __ = model.step(5, alive, [], _rng())
        assert len(crash) == 25
        assert crash <= set(alive)

    def test_storm_is_deterministic_under_seed(self):
        model_a = CampaignFailureModel(storms=[(5, 0.3)])
        model_b = CampaignFailureModel(storms=[(5, 0.3)])
        alive = list(range(64))
        crash_a, __ = model_a.step(5, alive, [], _rng(7))
        crash_b, __ = model_b.step(5, alive, [], _rng(7))
        assert crash_a == crash_b

    def test_rack_wipe_takes_whole_boxes(self):
        groups = [(0, 1), (2, 3), (4, 5), (6, 7)]
        model = CampaignFailureModel(
            rack_wipes=[(3, 0.5, None)], box_groups=groups
        )
        crash, __ = model.step(3, list(range(8)), [], _rng())
        assert len(crash) == 4
        for group in groups:
            assert crash >= set(group) or not (crash & set(group))

    def test_rack_wipe_group_recovery(self):
        model = CampaignFailureModel(
            rack_wipes=[(2, 0.5, 6)], box_groups=[(0, 1), (2, 3)]
        )
        assert model.may_recover
        crash, __ = model.step(2, [0, 1, 2, 3], [], _rng())
        __, recovered = model.step(6, [], sorted(crash), _rng())
        assert recovered == crash

    def test_churn_recovers_after_delay(self):
        model = CampaignFailureModel(
            churn_windows=[(0, 5, 1.0, 2, 2)]  # everyone, fixed delay 2
        )
        crash, __ = model.step(0, [0, 1], [], _rng())
        assert crash == {0, 1}
        assert model.step(1, [], [0, 1], _rng())[1] == set()
        assert model.step(2, [], [0, 1], _rng())[1] == {0, 1}

    def test_base_pf_layered_in(self):
        model = CampaignFailureModel(base_pf=1.0)
        crash, __ = model.step(0, [1, 2, 3], [], _rng())
        assert crash == {1, 2, 3}

    def test_no_recovery_without_recovering_events(self):
        assert not CampaignFailureModel(storms=[(1, 0.5)]).may_recover


class TestInstallGuards:
    def test_install_rejects_foreign_engine(self):
        from repro.sim.engine import SimulationEngine
        from repro.sim.network import LossyNetwork

        compiled = get_campaign("loss-burst").compile(horizon=10)
        engine = SimulationEngine(
            network=LossyNetwork(), rngs=RngRegistry(0), max_rounds=5
        )
        with pytest.raises(ValueError, match="network"):
            compiled.install(engine)
