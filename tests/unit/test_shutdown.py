"""Signal-aware graceful shutdown (repro.shutdown).

The regression this pins: pool cleanup was registered with atexit
only, and CPython never runs atexit hooks when a default signal
handler kills the process — so a SIGTERM'd CLI leaked workers.  The
shutdown registry runs the callbacks and exits 143 instead; the
subprocess test proves it end to end.
"""

import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import repro.shutdown as shutdown_module

REPO = Path(__file__).resolve().parents[2]


def _fresh_shutdown(monkeypatch):
    """Reset the module-level once-only state for an in-process test."""
    monkeypatch.setattr(shutdown_module, "_callbacks", [])
    monkeypatch.setattr(shutdown_module, "_ran", False)
    return shutdown_module


class TestCallbackRegistry:
    def test_callbacks_run_once_in_reverse_order(self, monkeypatch):
        shutdown = _fresh_shutdown(monkeypatch)
        order = []
        shutdown.on_shutdown(lambda: order.append("first"))
        shutdown.on_shutdown(lambda: order.append("second"))
        shutdown.run_callbacks()
        shutdown.run_callbacks()
        assert order == ["second", "first"]

    def test_a_failing_callback_does_not_block_the_rest(self, monkeypatch):
        shutdown = _fresh_shutdown(monkeypatch)
        ran = []

        def boom():
            raise RuntimeError("cleanup failed")

        shutdown.on_shutdown(lambda: ran.append("survivor"))
        shutdown.on_shutdown(boom)
        shutdown.run_callbacks()
        assert ran == ["survivor"]


class TestSignalExit:
    def test_sigterm_runs_cleanup_and_exits_143(self, tmp_path):
        marker = tmp_path / "cleaned"
        script = textwrap.dedent(f"""
            import sys, time
            from repro import shutdown

            shutdown.install()
            shutdown.on_shutdown(
                lambda: open({str(marker)!r}, "w").write("done")
            )
            print("ready", flush=True)
            time.sleep(30)
        """)
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            env={"PYTHONPATH": str(REPO / "src")},
        )
        try:
            assert child.stdout.readline().strip() == b"ready"
            child.send_signal(signal.SIGTERM)
            returncode = child.wait(timeout=10)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == 143
        deadline = time.monotonic() + 5
        while not marker.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert marker.read_text() == "done"

    def test_cli_installs_the_handler(self, tmp_path):
        """A SIGTERM'd CLI verb exits 143, not the default -15."""
        script = textwrap.dedent("""
            import sys
            sys.argv = ["repro", "monitor", "--n", "64", "--epochs",
                        "999999"]
            from repro.cli import main
            print("ready", flush=True)
            sys.exit(main())
        """)
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            env={"PYTHONPATH": str(REPO / "src")},
        )
        try:
            assert child.stdout.readline().strip() == b"ready"
            time.sleep(0.3)
            child.send_signal(signal.SIGTERM)
            returncode = child.wait(timeout=15)
        finally:
            if child.poll() is None:
                child.kill()
        assert returncode == 143
