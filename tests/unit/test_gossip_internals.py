"""White-box tests of HierarchicalGossipProcess internals.

These pin the fiddly mechanics the integration tests only exercise
statistically: index-mapped gossipee sampling, future-phase buffering and
drain, cascading advancement, and the global deadline arithmetic.
"""

import pytest

from repro.core.aggregates import AverageAggregate
from repro.core.gridbox import GridAssignment, GridBoxHierarchy, SubtreeId
from repro.core.hashing import StaticHash
from repro.core.hierarchical_gossip import (
    GossipParams,
    HierarchicalGossipProcess,
)
from repro.core.messages import GossipBatch, GossipValue

BOXES = {7: 0, 3: 0, 8: 0, 6: 1, 5: 1, 2: 2, 4: 2, 1: 3}
VOTES = {m: float(m) for m in BOXES}
F = AverageAggregate()


def _assignment():
    hierarchy = GridBoxHierarchy(8, 2)
    return GridAssignment(hierarchy, VOTES, StaticHash(BOXES))


def _process(member=7, **param_overrides):
    params = GossipParams(**param_overrides)
    process = HierarchicalGossipProcess(
        member, VOTES[member], F, _assignment(), tuple(VOTES), params
    )
    process.known = {member: process.own_state()}
    process._start_round = 0
    return process


class FakeCtx:
    """Minimal Context stand-in capturing sends."""

    def __init__(self, round_number=0):
        self.round = round_number
        self.sent = []
        self.terminated = False

    def rng_for(self, *names):
        import numpy as np
        return np.random.default_rng(0)

    def send(self, dest, payload, size=1):
        self.sent.append((dest, payload))
        return True

    def terminate(self):
        self.terminated = True


class TestPeerSampling:
    def test_pool_excludes_self_via_index_mapping(self):
        process = _process(7)
        ctx = FakeCtx()
        for __ in range(50):
            process._gossip(ctx)
        destinations = {dest for dest, __ in ctx.sent}
        assert 7 not in destinations
        assert destinations <= {3, 8}  # phase-1: own box only

    def test_phase2_pool_is_height2_subtree(self):
        process = _process(7)
        process.phase = 2
        process.known = {SubtreeId(2, 0): F.over({7: 7.0, 3: 3.0, 8: 8.0})}
        ctx = FakeCtx()
        for __ in range(80):
            process._gossip(ctx)
        destinations = {dest for dest, __ in ctx.sent}
        assert destinations <= {3, 8, 6, 5}
        assert 6 in destinations or 5 in destinations

    def test_singleton_pool_sends_nothing(self):
        process = _process(1)  # alone in box 11
        ctx = FakeCtx()
        process._gossip(ctx)
        assert ctx.sent == []


class TestBatching:
    def test_batch_carries_whole_known_below_cap(self):
        process = _process(7)
        process.known[3] = F.lift(3, 3.0)
        ctx = FakeCtx()
        process._gossip(ctx)
        __, payload = ctx.sent[0]
        assert isinstance(payload, GossipBatch)
        assert dict(payload.entries).keys() == {7, 3}

    def test_batch_capped_at_max_batch(self):
        process = _process(7, max_batch=1)
        process.known[3] = F.lift(3, 3.0)
        process.known[8] = F.lift(8, 8.0)
        ctx = FakeCtx()
        process._gossip(ctx)
        __, payload = ctx.sent[0]
        assert len(payload.entries) == 1

    def test_single_value_mode_sends_gossip_value(self):
        process = _process(7, batch_values=False)
        ctx = FakeCtx()
        process._gossip(ctx)
        __, payload = ctx.sent[0]
        assert isinstance(payload, GossipValue)


class TestBuffering:
    def _msg(self, payload):
        class Msg:
            pass
        m = Msg()
        m.payload = payload
        m.src = 99
        return m

    def test_drain_on_advance(self):
        process = _process(7, early_bump=True)
        future_state = F.over({6: 6.0, 5: 5.0})
        process.on_message(
            None, self._msg(GossipValue(2, SubtreeId(2, 1), future_state))
        )
        assert SubtreeId(2, 1) in process._future[2]
        # complete phase 1
        process.known[3] = F.lift(3, 3.0)
        process.known[8] = F.lift(8, 8.0)
        ctx = FakeCtx()
        process.phase_rounds = 1
        process._maybe_advance(ctx)
        assert process.phase == 3  # cascaded: buffered sibling completed 2
        assert ctx.terminated is False  # final phase awaits deadline

    def test_cascade_to_result_at_deadline(self):
        process = _process(7, early_bump=True)
        process.known[3] = F.lift(3, 3.0)
        process.known[8] = F.lift(8, 8.0)
        process.on_message(
            None,
            self._msg(GossipValue(2, SubtreeId(2, 1), F.over({6: 6.0,
                                                              5: 5.0}))),
        )
        process.on_message(
            None,
            self._msg(GossipValue(3, SubtreeId(1, 1), F.over({2: 2.0,
                                                              4: 4.0,
                                                              1: 1.0}))),
        )
        deadline = process.num_phases * process.rounds_per_phase
        ctx = FakeCtx(round_number=deadline)
        process.phase_rounds = 1
        process._maybe_advance(ctx)
        assert process.result is not None
        assert process.result.members == frozenset(VOTES)
        assert ctx.terminated

    def test_early_bump_blocked_without_full_coverage(self):
        process = _process(7, early_bump=True)
        process.known[3] = F.lift(3, 3.0)
        process.known[8] = F.lift(8, 8.0)
        ctx = FakeCtx()
        process.phase_rounds = 1
        process._maybe_advance(ctx)
        assert process.phase == 2
        # sibling 01 aggregate, but covering only one of its two members
        process.on_message(
            None, self._msg(GossipValue(2, SubtreeId(2, 1),
                                        F.over({6: 6.0})))
        )
        process._maybe_advance(ctx)
        assert process.phase == 2  # partial version: wait for timeout


class TestDeadline:
    def test_deadline_formula(self):
        process = _process(7)
        ctx = FakeCtx(
            round_number=process.num_phases * process.rounds_per_phase - 1
        )
        assert process._deadline_reached(ctx)
        ctx.round -= 1
        assert not process._deadline_reached(ctx)

    def test_delayed_start_shifts_deadline(self):
        process = _process(7)
        process.start_round = 5
        process._start_round = 5

        class Ctx:
            round = 5 + process.num_phases * process.rounds_per_phase - 1

        assert process._deadline_reached(Ctx())
