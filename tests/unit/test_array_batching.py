"""Unit pins for the array engine's batched primitives.

Two stream-compatibility contracts back the cross-engine bit-identity
guarantee (see ``tests/integration/test_engine_equivalence.py`` for the
end-to-end version):

* :class:`~repro.sim.sampling.SamplerBank` serves every member row the
  exact double sequence a per-member scalar
  :class:`~repro.sim.sampling.BlockedSampler` would serve, however
  matrix draws and scalar draws interleave;
* :meth:`~repro.sim.network.Network.plan_delivery_block` makes the same
  decisions, keeps the same statistics and consumes the loss stream at
  the same rate as per-message :meth:`plan_delivery` in send order —
  and models that cannot block-plan say so (``None``) instead of
  planning wrongly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.network import (
    JitterNetwork,
    LossyNetwork,
    Message,
    Network,
    PartitionedNetwork,
)
from repro.sim.rng import RngRegistry
from repro.sim.sampling import BlockedSampler, SamplerBank


def _streams(count, seed=7):
    return [np.random.default_rng(seed * 1000 + i) for i in range(count)]


class TestSamplerBank:
    def test_matrix_rows_match_scalar_samplers(self):
        rows = 6
        bank = SamplerBank(_streams(rows), block=8)
        reference = [BlockedSampler(g, block=0) for g in _streams(rows)]
        drawn = bank.draw_matrix(np.arange(rows, dtype=np.int64), 5)
        for row in range(rows):
            expected = [reference[row].uniform() for _ in range(5)]
            assert drawn[row].tolist() == expected

    def test_refill_preserves_leftovers_across_draws(self):
        # Draw counts chosen to straddle the block boundary repeatedly.
        bank = SamplerBank(_streams(3), block=4)
        reference = [BlockedSampler(g, block=0) for g in _streams(3)]
        served = {row: [] for row in range(3)}
        for k in (3, 2, 4, 1, 3):
            drawn = bank.draw_matrix(np.arange(3, dtype=np.int64), k)
            for row in range(3):
                served[row].extend(drawn[row].tolist())
        for row in range(3):
            expected = [
                reference[row].uniform() for _ in range(len(served[row]))
            ]
            assert served[row] == expected

    def test_row_sampler_continues_the_same_stream(self):
        bank = SamplerBank(_streams(2), block=8)
        reference = [BlockedSampler(g, block=0) for g in _streams(2)]
        drawn = bank.draw_matrix(np.arange(2, dtype=np.int64), 3)
        for row in range(2):
            for _ in range(3):
                reference[row].uniform()
            assert drawn[row].shape == (3,)
        # Scalar continuation after a matrix draw: same stream position.
        scalar = bank.row_sampler(1)
        assert scalar.uniform() == reference[1].uniform()
        assert scalar.pick_distinct(10, 2) == reference[1].pick_distinct(10, 2)
        # And a matrix draw after the scalar detour stays aligned.
        again = bank.draw_matrix(np.array([1], dtype=np.int64), 2)
        assert again[0].tolist() == [
            reference[1].uniform(), reference[1].uniform()
        ]

    def test_subset_of_rows_leaves_others_untouched(self):
        bank = SamplerBank(_streams(4), block=8)
        reference = [BlockedSampler(g, block=0) for g in _streams(4)]
        bank.draw_matrix(np.array([1, 3], dtype=np.int64), 4)
        for _ in range(4):
            reference[1].uniform()
            reference[3].uniform()
        drawn = bank.draw_matrix(np.arange(4, dtype=np.int64), 2)
        for row in range(4):
            assert drawn[row].tolist() == [
                reference[row].uniform(), reference[row].uniform()
            ]

    def test_draw_beyond_block_rejected(self):
        bank = SamplerBank(_streams(1), block=4)
        with pytest.raises(ValueError, match="block"):
            bank.draw_matrix(np.array([0], dtype=np.int64), 5)


def _send_block(senders, dests, size=1):
    src = np.array(senders, dtype=np.int64)
    dest = np.array(dests, dtype=np.int64)
    sizes = np.full(len(src), size, dtype=np.int64)
    slots = np.zeros(len(src), dtype=np.int64)
    seen: dict[int, int] = {}
    for i, sender in enumerate(senders):
        slots[i] = seen.get(sender, 0)
        seen[sender] = slots[i] + 1
    return src, dest, sizes, slots


def _scalar_outcomes(network, rngs, senders, dests, sent_round=0, size=1):
    network.begin_round(sent_round)
    outcomes = []
    for sender, dest in zip(senders, dests):
        outcome = network.plan_delivery(
            Message(src=sender, dest=dest, payload=None, size=size,
                    sent_round=sent_round),
            rngs,
        )
        outcomes.append(outcome)
    return outcomes


class TestPlanDeliveryBlock:
    SENDERS = [0, 0, 0, 0, 1, 1, 2, 3, 3, 3]
    DESTS = [5, 6, 7, 8, 5, 9, 4, 0, 1, 2]

    def _compare(self, make_network, expect_rejections=False):
        scalar_net = make_network()
        block_net = make_network()
        scalar_rngs = RngRegistry(seed=11)
        block_rngs = RngRegistry(seed=11)
        outcomes = _scalar_outcomes(
            scalar_net, scalar_rngs, self.SENDERS, self.DESTS
        )
        src, dest, sizes, slots = _send_block(self.SENDERS, self.DESTS)
        block_net.begin_round(0)
        planned = block_net.plan_delivery_block(
            src, dest, sizes, slots, 0, block_rngs
        )
        assert planned is not None
        delivered, delivery_round = planned
        rejected = [o is Network.REJECTED for o in outcomes]
        assert expect_rejections == any(rejected)
        assert delivered.tolist() == [
            isinstance(o, int) for o in outcomes
        ]
        for outcome in outcomes:
            if isinstance(outcome, int):
                assert outcome == delivery_round
        for field in ("sent", "dropped", "rejected_bandwidth",
                      "bytes_sent", "dropped_cross_partition"):
            assert (
                getattr(block_net.stats, field)
                == getattr(scalar_net.stats, field)
            ), field
        assert (
            block_net.stats.per_sender_sent
            == scalar_net.stats.per_sender_sent
        )
        # Same stream position: the next loss double must match.
        assert block_net._loss_next == scalar_net._loss_next

    def test_lossy_matches_scalar(self):
        self._compare(lambda: LossyNetwork(ucastl=0.4))

    def test_lossless_consumes_no_draws(self):
        self._compare(lambda: LossyNetwork(ucastl=0.0))

    def test_bandwidth_cap_matches_scalar(self):
        self._compare(
            lambda: LossyNetwork(ucastl=0.4, max_sends_per_round=3),
            expect_rejections=True,
        )

    def test_partitioned_matches_scalar(self):
        self._compare(
            lambda: PartitionedNetwork(
                partition_of=lambda node: 0 if node < 5 else 1,
                partition_of_block=lambda nodes: nodes >= 5,
                partl=0.9,
                ucastl=0.1,
            )
        )

    def test_healed_partition_matches_scalar(self):
        def make():
            network = PartitionedNetwork(
                partition_of=lambda node: 0 if node < 5 else 1,
                partition_of_block=lambda nodes: nodes >= 5,
                partl=0.9,
                ucastl=0.1,
                heal_at=0,
            )
            return network

        self._compare(make)

    def test_partitioned_without_block_mapping_opts_out(self):
        network = PartitionedNetwork(
            partition_of=lambda node: 0 if node < 5 else 1,
            partl=0.9,
        )
        src, dest, sizes, slots = _send_block(self.SENDERS, self.DESTS)
        assert network.plan_delivery_block(
            src, dest, sizes, slots, 0, RngRegistry(seed=1)
        ) is None

    def test_jitter_latency_opts_out(self):
        network = JitterNetwork(ucastl=0.1, mean_extra_latency=2.0)
        src, dest, sizes, slots = _send_block(self.SENDERS, self.DESTS)
        assert network.plan_delivery_block(
            src, dest, sizes, slots, 0, RngRegistry(seed=1)
        ) is None

    def test_subclassed_loss_hook_opts_out(self):
        class Custom(LossyNetwork):
            def loss_probability(self, message):
                return 0.5 if message.dest % 2 else 0.0

        network = Custom(ucastl=0.1)
        src, dest, sizes, slots = _send_block(self.SENDERS, self.DESTS)
        assert network.plan_delivery_block(
            src, dest, sizes, slots, 0, RngRegistry(seed=1)
        ) is None

    def test_oversized_message_raises_like_scalar(self):
        from repro.sim.network import MessageTooLarge

        network = LossyNetwork(ucastl=0.0, max_message_size=8)
        src, dest, sizes, slots = _send_block([0, 1], [2, 3], size=9)
        with pytest.raises(MessageTooLarge):
            network.plan_delivery_block(
                src, dest, sizes, slots, 0, RngRegistry(seed=1)
            )


class TestArrayEngineGuards:
    def test_tracer_rejected(self):
        from repro.sim.array_engine import ArraySteppedEngine
        from repro.sim.trace import Tracer

        with pytest.raises(ValueError, match="trace"):
            ArraySteppedEngine(
                stepper=object(),
                network=LossyNetwork(ucastl=0.0),
                rngs=RngRegistry(seed=0),
                tracer=Tracer(),
            )

    def test_unsupported_reasons(self):
        from repro.core.array_stepper import unsupported_reason
        from repro.core.hierarchical_gossip import GossipParams

        assert unsupported_reason(GossipParams()) is None
        assert "single-value" in unsupported_reason(
            GossipParams(batch_values=False)
        )
        assert "push-pull" in unsupported_reason(
            GossipParams(push_pull=True)
        )
        assert "representation" in unsupported_reason(
            GossipParams(representative_fraction=0.5)
        )
        assert "deadlines" in unsupported_reason(
            GossipParams(adaptive_deadlines=True)
        )
