"""Per-phase round budgets (repro.obs.budgets).

The partition invariant is the whole point: the phase intervals are
half-open and non-overlapping, they tile the run's round axis exactly,
so the per-phase message/byte sums reproduce the run's totals — a
budget report that charged a round twice (or never) would misattribute
cost.  Pinned on synthetic traces here and against a real traced run's
result record at the end.
"""

import io

import pytest

from repro.core.observe import PhaseEvent
from repro.experiments.params import with_params
from repro.experiments.runner import run_once
from repro.obs.budgets import BUDGETS_SCHEMA, budget_report
from repro.obs.export import TraceDocument, load_trace, write_trace
from repro.obs.telemetry import RunTelemetry
from repro.sim.metrics import RoundSample


def _enter(phase, round):
    return PhaseEvent(
        kind="phase_enter", member=0, round=round, phase=phase
    )


def _round(round, messages, bytes_=None, dropped=0):
    return RoundSample(
        round=round, messages_sent=messages,
        bytes_sent=bytes_ if bytes_ is not None else messages * 10,
        messages_dropped=dropped, live_members=8, active_members=8,
        max_sends_by_member=2,
    )


def _document(events, rounds):
    return TraceDocument(phase_events=list(events), rounds=list(rounds))


class TestPartition:
    def test_intervals_tile_the_round_axis(self):
        document = _document(
            [_enter(1, 0), _enter(2, 3), _enter(3, 5)],
            [_round(r, messages=10 * (r + 1)) for r in range(8)],
        )
        report = budget_report(document)
        spans = [(b.phase, b.start_round, b.end_round, b.rounds)
                 for b in report.phases]
        assert spans == [(1, 0, 2, 3), (2, 3, 4, 2), (3, 5, 7, 3)]
        # Tiling: per-phase sums reproduce the run's totals exactly.
        assert report.total_rounds == 8
        assert report.total_messages == sum(
            s.messages_sent for s in document.rounds
        )
        assert report.total_bytes == sum(
            s.bytes_sent for s in document.rounds
        )
        assert [b.messages for b in report.phases] == [60, 90, 210]

    def test_same_round_entries_leave_an_empty_slice(self):
        document = _document(
            [_enter(1, 0), _enter(2, 0), _enter(3, 4)],
            [_round(r, messages=5) for r in range(6)],
        )
        report = budget_report(document)
        first = report.phases[0]
        assert (first.rounds, first.messages, first.bytes) == (0, 0, 0)
        assert first.start_round == 0 and first.end_round == -1
        # Nothing double-counted: the totals still tile.
        assert report.total_messages == 30
        assert "(shared)" in report.render()

    def test_earliest_entry_per_phase_wins(self):
        document = _document(
            [_enter(1, 0), _enter(2, 5), _enter(2, 2)],
            [_round(r, messages=1) for r in range(6)],
        )
        report = budget_report(document)
        assert report.phases[1].start_round == 2

    def test_last_phase_extends_to_the_last_observed_round(self):
        # Phase events can trail the last round sample (a finalize in
        # the terminating round); the axis covers both.
        document = _document(
            [_enter(1, 0),
             PhaseEvent(kind="finalize", member=0, round=9, phase=1)],
            [_round(r, messages=2) for r in range(4)],
        )
        report = budget_report(document)
        assert report.phases[0].end_round == 9
        assert report.total_rounds == 10

    def test_phase_events_are_counted_per_phase(self):
        document = _document(
            [_enter(1, 0), _enter(1, 0),
             PhaseEvent(kind="finalize", member=0, round=2, phase=1)],
            [_round(0, messages=1)],
        )
        report = budget_report(document)
        assert report.phases[0].phase_events == 3

    def test_compact_trace_raises(self):
        document = _document([], [_round(0, messages=1)])
        with pytest.raises(ValueError, match="no phase_enter"):
            budget_report(document)


class TestRecord:
    def test_record_shape_and_shares(self):
        document = _document(
            [_enter(1, 0), _enter(2, 2)],
            [_round(r, messages=10) for r in range(4)],
        )
        record = budget_report(document).to_record()
        assert record["schema"] == BUDGETS_SCHEMA
        assert record["total_messages"] == 40
        shares = [p["messages_share"] for p in record["phases"]]
        assert shares == [0.5, 0.5]
        assert sum(p["rounds_share"] for p in record["phases"]) == 1.0

    def test_json_is_deterministic(self):
        def build():
            return budget_report(_document(
                [_enter(1, 0), _enter(2, 2)],
                [_round(r, messages=7) for r in range(5)],
            ))
        assert build().to_json() == build().to_json()


class TestAgainstRealRun:
    def test_budget_totals_reproduce_the_run_record(self):
        telemetry = RunTelemetry()
        result = run_once(
            with_params(n=64, seed=1, ucastl=0.4), telemetry=telemetry
        )
        buffer = io.StringIO()
        write_trace(telemetry, buffer)
        buffer.seek(0)
        report = budget_report(load_trace(buffer))
        assert report.total_messages == result.messages_sent
        assert report.total_bytes == result.bytes_sent
        assert len(report.phases) >= 2
        phases = [b.phase for b in report.phases]
        assert phases == sorted(phases)
        # The phase intervals tile the run's full round axis.
        assert report.total_rounds == result.rounds
