"""Unit tests for the protocol hardening knobs (adaptive deadlines,
final-phase retransmission, graceful degradation) and the failure-model
edge cases the chaos campaigns exercise."""

import math

import pytest

from repro.core.aggregates import get_aggregate
from repro.core.gridbox import GridAssignment, GridBoxHierarchy
from repro.core.hashing import FairHash
from repro.core.hierarchical_gossip import (
    GossipParams,
    build_hierarchical_gossip_group,
)
from repro.core.protocol import measure_completeness
from repro.experiments.params import with_params
from repro.experiments.runner import _build_processes, run_once
from repro.sim.engine import SimulationEngine
from repro.sim.failures import ScheduledFailures
from repro.sim.network import LossyNetwork
from repro.sim.rng import RngRegistry


def _world(n=16, k=4, **params):
    votes = {i: float(i) for i in range(n)}
    hierarchy = GridBoxHierarchy(n, k)
    assignment = GridAssignment(hierarchy, votes, FairHash(salt=0))
    return build_hierarchical_gossip_group(
        votes, get_aggregate("average"), assignment,
        GossipParams(**params),
    )


def _run(processes, ucastl=0.0, failure_model=None, max_rounds=200):
    engine = SimulationEngine(
        network=LossyNetwork(ucastl=ucastl, max_message_size=1 << 20),
        failure_model=failure_model,
        rngs=RngRegistry(0),
        max_rounds=max_rounds,
    )
    engine.add_processes(processes)
    engine.run()
    return engine


class TestParamsValidation:
    def test_fanout_must_be_positive(self):
        with pytest.raises(ValueError, match="fanout"):
            GossipParams(fanout_m=0)

    def test_extension_factor_non_negative(self):
        with pytest.raises(ValueError, match="adaptive_extension_factor"):
            GossipParams(adaptive_extension_factor=-0.5)

    def test_final_retransmit_non_negative(self):
        with pytest.raises(ValueError, match="final_retransmit"):
            GossipParams(final_retransmit=-1)

    def test_fanout_exceeding_group_rejected(self):
        with pytest.raises(ValueError, match="exceeds the group size"):
            _world(n=4, k=4, fanout_m=5)

    def test_singleton_group_allows_any_fanout(self):
        votes = {0: 1.0}
        hierarchy = GridBoxHierarchy(1, 4)
        assignment = GridAssignment(hierarchy, votes, FairHash(salt=0))
        processes = build_hierarchical_gossip_group(
            votes, get_aggregate("average"), assignment,
            GossipParams(fanout_m=8),
        )
        assert len(processes) == 1


class TestExtensionBudget:
    def test_zero_when_disabled(self):
        assert GossipParams(adaptive_deadlines=False).extension_budget(6) == 0

    def test_ceil_of_factor_times_phase(self):
        params = GossipParams(adaptive_deadlines=True,
                              adaptive_extension_factor=0.5)
        assert params.extension_budget(5) == math.ceil(2.5)
        assert params.extension_budget(6) == 3


class TestDefaultsAreThePaperProtocol:
    def test_hardening_off_is_bit_identical(self):
        baseline = run_once(with_params(n=64, seed=5))
        explicit = run_once(with_params(
            n=64, seed=5, adaptive_deadlines=False, final_retransmit=0,
        ))
        assert baseline.completeness == explicit.completeness
        assert baseline.messages_sent == explicit.messages_sent
        assert baseline.rounds == explicit.rounds


class TestAdaptiveDeadlines:
    def test_extends_under_heavy_loss(self):
        heavy = run_once(with_params(
            n=64, seed=2, ucastl=0.55, pf=0.0, adaptive_deadlines=True,
        ))
        baseline_heavy = run_once(with_params(
            n=64, seed=2, ucastl=0.55, pf=0.0,
        ))
        # Heavy loss: the run borrows extra rounds...
        assert heavy.rounds > baseline_heavy.rounds
        # ...and completeness does not get worse for it.
        assert heavy.completeness >= baseline_heavy.completeness

    def test_extension_is_bounded(self):
        config = with_params(
            n=64, seed=2, ucastl=0.55, pf=0.0, adaptive_deadlines=True,
        )
        result = run_once(config)
        # The engine horizon already includes the worst-case budget; the
        # run must finish inside it, not hit the cutoff.
        __, max_rounds = _build_processes(
            config, {i: 1.0 for i in range(64)}, RngRegistry(0)
        )
        assert result.rounds < max_rounds


class TestFinalRetransmit:
    def test_inactive_representatives_retransmit(self):
        # With representative_fraction < 1 most members fall silent in
        # the final phase; the retransmission budget lets them push their
        # state a few more times.
        quiet = run_once(with_params(
            n=64, seed=4, ucastl=0.4, representative_fraction=0.25,
        ))
        retrans = run_once(with_params(
            n=64, seed=4, ucastl=0.4, representative_fraction=0.25,
            final_retransmit=3,
        ))
        assert retrans.messages_sent > quiet.messages_sent
        assert retrans.completeness >= quiet.completeness


class TestGracefulDegradation:
    def test_full_run_reports_full_coverage(self):
        # Generous round budget: every member converges at zero loss.
        processes = _world(n=16, k=4, rounds_factor_c=3.0)
        _run(processes)
        for process in processes:
            assert process.coverage_fraction == 1.0
            assert process.partial_result is False

    def test_self_assessment_matches_result(self):
        # Tight budget (C=1, fanout 2): some members lock in partial
        # aggregates even without loss — each must report exactly what
        # its own result covers.
        processes = _world(n=16, k=4)
        _run(processes)
        for process in processes:
            assert process.coverage_fraction == pytest.approx(
                process.result.covers() / 16
            )

    def test_unfinished_process_reports_none(self):
        processes = _world(n=16, k=4)
        assert processes[0].coverage_fraction is None
        assert processes[0].partial_result is None

    def test_partial_coverage_reported_after_crashes(self):
        processes = _world(n=16, k=4)
        # Crash a quarter of the group in round 1, before their box
        # aggregates can escape: survivors must self-report < 1 coverage.
        _run(processes, failure_model=ScheduledFailures(
            crash_at={1: [0, 1, 2, 3]}, member_ids=range(16),
        ))
        finished = [p for p in processes if p.alive and p.result is not None]
        assert finished
        for process in finished:
            assert process.coverage_fraction is not None
            assert process.coverage_fraction <= 1.0
        partial = [p for p in finished if p.partial_result]
        assert partial, "crashing 4/16 members must leave partial results"


class TestFailureEdgeCases:
    def test_all_members_crashed_mid_phase(self):
        processes = _world(n=8, k=4)
        engine = _run(processes, failure_model=ScheduledFailures(
            crash_at={2: list(range(8))}, member_ids=range(8),
        ), max_rounds=50)
        assert engine.stats.crashes == 8
        report = measure_completeness(processes, group_size=8)
        assert report.survivors == 0
        assert report.mean_completeness == 0.0

    def test_rejoin_after_compose_does_not_double_count(self):
        # Crash one member, bring it back after its subtree has long
        # been composed; any member reaching completeness 1.0 must hold
        # the exact true average (double-counting would skew the sum).
        processes = _world(n=16, k=4)
        _run(processes, failure_model=ScheduledFailures(
            crash_at={2: [5]}, recover_at={10: [5]}, member_ids=range(16),
        ), max_rounds=200)
        true_average = sum(float(i) for i in range(16)) / 16
        finished = [p for p in processes if p.result is not None]
        assert finished
        for process in finished:
            covers = process.result.covers()
            assert covers <= 16
            if covers == 16:
                value = process.function.finalize(process.result)
                assert value == pytest.approx(true_average)

    def test_engine_stops_when_recovery_never_comes(self):
        # may_recover=True keeps a crashed-but-unterminated group "alive"
        # in the engine's eyes; a recovery scheduled past the horizon
        # must not hang the run.
        processes = _world(n=8, k=4)
        engine = _run(processes, failure_model=ScheduledFailures(
            crash_at={1: [0]}, recover_at={10_000: [0]},
            member_ids=range(8),
        ), max_rounds=40)
        assert engine.failure_model.may_recover
        assert engine.stats.rounds_executed <= 40
