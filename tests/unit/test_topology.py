"""Unit tests for the sensor field and ad-hoc network substrate."""

import numpy as np
import pytest

from repro.topology.adhoc import AdHocNetwork
from repro.topology.field import Hotspot, ScalarField, SensorField


class TestScalarField:
    def test_constant_field(self):
        field = ScalarField(base=21.0)
        rng = np.random.default_rng(0)
        assert field.sample(0.3, 0.8, rng) == 21.0

    def test_gradient(self):
        field = ScalarField(base=0.0, gradient=(10.0, 0.0))
        rng = np.random.default_rng(0)
        assert field.sample(0.5, 0.0, rng) == pytest.approx(5.0)

    def test_hotspot_peaks_at_center(self):
        hotspot = Hotspot(x=0.5, y=0.5, amplitude=8.0, radius=0.1)
        field = ScalarField(base=0.0, hotspots=(hotspot,))
        rng = np.random.default_rng(0)
        center = field.sample(0.5, 0.5, rng)
        edge = field.sample(0.9, 0.9, rng)
        assert center == pytest.approx(8.0)
        assert edge < 0.1

    def test_noise_varies(self):
        field = ScalarField(base=0.0, noise_std=1.0)
        rng = np.random.default_rng(0)
        samples = {field.sample(0.1, 0.1, rng) for __ in range(5)}
        assert len(samples) == 5


class TestSensorField:
    def test_uniform_random_count_and_range(self):
        rng = np.random.default_rng(1)
        sensors = SensorField.uniform_random(50, rng)
        assert len(sensors) == 50
        for x, y in sensors.positions.values():
            assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0

    def test_regular_grid(self):
        sensors = SensorField.regular_grid(9)
        assert len(sensors) == 9

    def test_position_validation(self):
        with pytest.raises(ValueError):
            SensorField({0: (1.2, 0.0)})

    def test_votes_sampled_per_sensor(self):
        rng = np.random.default_rng(2)
        sensors = SensorField.uniform_random(10, rng)
        votes = sensors.votes(ScalarField(base=20.0), rng)
        assert set(votes) == set(sensors.positions)
        assert all(v == 20.0 for v in votes.values())

    def test_start_id_offset(self):
        rng = np.random.default_rng(3)
        sensors = SensorField.uniform_random(5, rng, start_id=100)
        assert sorted(sensors.positions) == [100, 101, 102, 103, 104]


class TestAdHocNetwork:
    def _line_network(self):
        positions = {i: (0.1 * i, 0.0) for i in range(5)}
        return AdHocNetwork(positions, radius=0.11)

    def test_line_topology_hops(self):
        network = self._line_network()
        assert network.hops(0, 1) == 1
        assert network.hops(0, 4) == 4
        assert network.hops(2, 2) == 0

    def test_connectivity(self):
        assert self._line_network().is_connected()

    def test_disconnected_components(self):
        positions = {0: (0.0, 0.0), 1: (0.05, 0.0), 2: (0.9, 0.9)}
        network = AdHocNetwork(positions, radius=0.1)
        assert not network.is_connected()
        assert network.hops(0, 2) is None
        assert network.largest_component() == {0, 1}

    def test_mean_hops_line(self):
        network = self._line_network()
        # Pairs of a 5-line: mean distance = 2.0
        assert network.mean_hops() == pytest.approx(2.0)

    def test_degree_stats(self):
        mean_degree, min_degree = self._line_network().degree_stats()
        assert min_degree == 1
        assert mean_degree == pytest.approx((1 + 2 + 2 + 2 + 1) / 5)

    def test_radius_validated(self):
        with pytest.raises(ValueError):
            AdHocNetwork({0: (0.0, 0.0)}, radius=0.0)

    def test_plugs_into_topology_network(self):
        from repro.sim.network import Message, TopologyNetwork
        adhoc = self._line_network()
        network = TopologyNetwork(hops=adhoc.hops, hop_loss=0.1)
        message = Message(src=0, dest=4, payload="x")
        assert network.loss_probability(message) == pytest.approx(
            1 - 0.9**4
        )
