"""Unit tests for membership and views."""

import pytest

from repro.sim.group import CompleteViews, GroupMembership, PartialViews
from repro.sim.rng import RngRegistry


class TestGroupMembership:
    def test_of_size(self):
        group = GroupMembership.of_size(5, start=10)
        assert list(group) == [10, 11, 12, 13, 14]
        assert len(group) == 5

    def test_uniqueness_enforced(self):
        with pytest.raises(ValueError):
            GroupMembership([1, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GroupMembership([])

    def test_contains_and_index(self):
        group = GroupMembership([5, 9, 2])
        assert 9 in group
        assert 7 not in group
        assert group.index_of(2) == 2


class TestCompleteViews:
    def test_everyone_sees_everyone(self):
        group = GroupMembership.of_size(4)
        views = CompleteViews(group)
        for member in group:
            assert views.view_of(member) == group.member_ids


class TestPartialViews:
    def test_view_size_respected(self):
        group = GroupMembership.of_size(20)
        views = PartialViews(group, view_size=5, rngs=RngRegistry(0))
        for member in group:
            assert len(views.view_of(member)) == 5

    def test_self_always_in_view(self):
        group = GroupMembership.of_size(20)
        views = PartialViews(group, view_size=3, rngs=RngRegistry(1))
        for member in group:
            assert member in views.view_of(member)

    def test_views_within_membership(self):
        group = GroupMembership([7, 8, 9, 10])
        views = PartialViews(group, view_size=2, rngs=RngRegistry(2))
        for member in group:
            assert set(views.view_of(member)) <= set(group)

    def test_deterministic_given_seed(self):
        group = GroupMembership.of_size(10)
        a = PartialViews(group, view_size=4, rngs=RngRegistry(3))
        b = PartialViews(group, view_size=4, rngs=RngRegistry(3))
        assert all(a.view_of(m) == b.view_of(m) for m in group)

    def test_size_bounds_validated(self):
        group = GroupMembership.of_size(3)
        with pytest.raises(ValueError):
            PartialViews(group, view_size=0, rngs=RngRegistry(0))
        with pytest.raises(ValueError):
            PartialViews(group, view_size=4, rngs=RngRegistry(0))

    def test_full_view_size_equals_complete(self):
        group = GroupMembership.of_size(6)
        views = PartialViews(group, view_size=6, rngs=RngRegistry(0))
        for member in group:
            assert set(views.view_of(member)) == set(group)
