"""Unit tests for the epidemic model validation."""

import pytest

from repro.analysis.validation import (
    discrete_epidemic,
    epidemic_model_error,
    simulate_epidemic,
)


class TestSimulateEpidemic:
    def test_initial_state(self):
        trajectory = simulate_epidemic(m=50, b=2.0, rounds=5, trials=4)
        assert trajectory[0] == 1.0
        assert len(trajectory) == 6

    def test_monotone_non_decreasing(self):
        trajectory = simulate_epidemic(m=100, b=1.5, rounds=15, trials=8)
        assert all(a <= b + 1e-9 for a, b in zip(trajectory, trajectory[1:]))

    def test_saturates(self):
        trajectory = simulate_epidemic(m=100, b=3.0, rounds=20, trials=8)
        assert trajectory[-1] == pytest.approx(100.0, abs=0.5)

    def test_zero_rate_never_spreads(self):
        trajectory = simulate_epidemic(m=100, b=0.0, rounds=10, trials=4)
        assert trajectory == [1.0] * 11

    def test_fractional_b_intermediate(self):
        slow = simulate_epidemic(m=200, b=0.5, rounds=10, trials=16, seed=1)
        fast = simulate_epidemic(m=200, b=1.0, rounds=10, trials=16, seed=1)
        assert slow[-1] < fast[-1]

    def test_deterministic_given_seed(self):
        a = simulate_epidemic(m=64, b=1.0, rounds=8, trials=4, seed=3)
        b = simulate_epidemic(m=64, b=1.0, rounds=8, trials=4, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_epidemic(m=0, b=1.0, rounds=5)
        with pytest.raises(ValueError):
            simulate_epidemic(m=10, b=-1.0, rounds=5)
        with pytest.raises(ValueError):
            simulate_epidemic(m=10, b=1.0, rounds=5, trials=0)


class TestDiscreteEpidemic:
    def test_monotone_and_bounded(self):
        trajectory = discrete_epidemic(m=100, b=2.0, rounds=30)
        assert all(a <= b for a, b in zip(trajectory, trajectory[1:]))
        assert trajectory[-1] <= 100.0

    def test_single_member(self):
        assert discrete_epidemic(m=1, b=5.0, rounds=3) == [1.0] * 4

    def test_early_growth_rate(self):
        """Early rounds grow like (1 + b) per round, not e^b."""
        trajectory = discrete_epidemic(m=100_000, b=2.0, rounds=3)
        assert trajectory[1] == pytest.approx(3.0, rel=0.01)
        assert trajectory[2] == pytest.approx(9.0, rel=0.02)


class TestModelError:
    @pytest.mark.parametrize("m,b", [(100, 2.0), (500, 1.0), (1000, 4.0)])
    def test_discrete_model_tracks_simulation(self, m, b):
        __, __, error = epidemic_model_error(
            m, b, rounds=20, trials=48, model="discrete"
        )
        assert error < 0.03

    def test_logistic_model_saturates_with_simulation(self):
        """The paper's continuous logistic diverges mid-trajectory but
        agrees on the endpoint (full saturation)."""
        empirical, model, __ = epidemic_model_error(
            500, 2.0, rounds=25, trials=16, model="logistic"
        )
        assert empirical[-1] == pytest.approx(model[-1], rel=0.01)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            epidemic_model_error(10, 1.0, 5, model="quadratic")
