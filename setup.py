"""Shim so `pip install -e .` works offline without the `wheel` package
(legacy editable installs need a setup.py; all metadata is in
pyproject.toml)."""

from setuptools import setup

setup()
